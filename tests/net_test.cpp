// Tests for the src/net interconnect subsystem: topology/e-cube routing,
// wormhole mesh behaviour (hop counts, priority overtaking, injection
// backpressure), the bounded ideal wire, multi-node determinism, the
// golden equivalence pin of the default ideal network against the
// pre-seam MultiMachine, and deadlock reporting.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "driver/experiment.h"
#include "mdp/assembler.h"
#include "mdp/multi.h"
#include "net/ideal.h"
#include "net/mesh.h"
#include "net/topology.h"
#include "programs/registry.h"

namespace jtam {
namespace {

TEST(Topology, FactorizationIsExactAndNearCubic) {
  struct Case {
    int n, x, y, z;
  };
  const Case cases[] = {{1, 1, 1, 1}, {2, 2, 1, 1},  {4, 2, 2, 1},
                        {8, 2, 2, 2}, {12, 3, 2, 2}, {7, 7, 1, 1},
                        {64, 4, 4, 4}, {256, 8, 8, 4},
                        // Non-powers-of-two and primes: the factorization
                        // must stay exact (x*y*z == n), never padded.
                        {6, 3, 2, 1}, {18, 3, 3, 2}, {30, 5, 3, 2},
                        {60, 5, 4, 3}, {100, 5, 5, 4}, {17, 17, 1, 1},
                        {97, 97, 1, 1}};
  for (const Case& c : cases) {
    const net::Shape s = net::Shape::for_nodes(c.n);
    EXPECT_EQ(s.nodes(), c.n) << c.n;
    EXPECT_EQ(s.x, c.x) << c.n;
    EXPECT_EQ(s.y, c.y) << c.n;
    EXPECT_EQ(s.z, c.z) << c.n;
    EXPECT_TRUE(s.x >= s.y && s.y >= s.z) << c.n;
  }
}

TEST(Topology, HopDistanceIsASymmetricMetricOnOddShapes) {
  // Awkward node counts (prime, 2·3·5) still give a well-behaved metric:
  // symmetric, zero only on the diagonal, triangle inequality via a
  // midpoint spot check, and bounded by the grid diameter.
  for (int n : {17, 30}) {
    const net::Shape s = net::Shape::for_nodes(n);
    const int diameter = (s.x - 1) + (s.y - 1) + (s.z - 1);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const int d = net::hop_distance(s, a, b);
        EXPECT_EQ(d, net::hop_distance(s, b, a)) << a << "," << b;
        EXPECT_EQ(d == 0, a == b) << a << "," << b;
        EXPECT_LE(d, diameter) << a << "," << b;
        EXPECT_LE(net::hop_distance(s, a, 0) - net::hop_distance(s, b, 0), d)
            << "triangle inequality through node 0: " << a << "," << b;
      }
    }
  }
}

TEST(Topology, CoordRoundTripAndEcubeOrder) {
  const net::Shape s{3, 3, 2};
  for (int id = 0; id < s.nodes(); ++id) {
    EXPECT_EQ(s.id_of(s.coord_of(id)), id);
  }
  // E-cube from node 0 to the far corner walks X fully, then Y, then Z.
  int here = 0;
  const int dest = s.nodes() - 1;
  std::vector<int> dims;
  while (true) {
    const net::Route r = net::ecube_route(s, here, dest);
    if (r.arrived) break;
    dims.push_back(r.dim);
    net::Coord c = s.coord_of(here);
    (r.dim == 0 ? c.x : r.dim == 1 ? c.y : c.z) += r.dir;
    here = s.id_of(c);
  }
  EXPECT_EQ(static_cast<int>(dims.size()), net::hop_distance(s, 0, dest));
  EXPECT_TRUE(std::is_sorted(dims.begin(), dims.end()))
      << "e-cube must correct dimensions in X, Y, Z order";
}

/// Records deliveries with the cycle they completed on.
struct SinkRec final : net::DeliverySink {
  struct Delivery {
    int dest;
    mdp::Priority p;
    std::vector<std::uint32_t> words;
    std::uint64_t cycle;
  };
  std::vector<Delivery> deliveries;
  std::uint64_t now = 0;
  void deliver(int dest, mdp::Priority p,
               std::span<const std::uint32_t> w) override {
    deliveries.push_back(Delivery{dest, p, {w.begin(), w.end()}, now});
  }
};

void run_cycles(net::NetworkModel& nm, SinkRec& sink, std::uint64_t from,
                std::uint64_t to) {
  for (std::uint64_t c = from; c < to; ++c) {
    sink.now = c;
    nm.step(c, sink);
  }
}

TEST(MeshNetwork, EcubeHopCountsAndPayloadIntegrity) {
  net::MeshNetwork::Config cfg;
  cfg.shape = net::Shape{3, 3, 2};
  net::MeshNetwork mesh(cfg);
  SinkRec sink;
  const std::vector<std::uint32_t> words = {0xAA, 0xBB, 0xCC};
  ASSERT_TRUE(mesh.can_accept(0, 17, mdp::Priority::Low));
  mesh.inject(0, 17, mdp::Priority::Low, words, 0, 0);
  EXPECT_FALSE(mesh.idle());
  run_cycles(mesh, sink, 1, 64);
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].dest, 17);
  EXPECT_EQ(sink.deliveries[0].words, words);
  EXPECT_TRUE(mesh.idle());
  const net::NetStats& st = mesh.stats();
  EXPECT_EQ(st.messages, 1u);
  // Head traverses exactly the Manhattan distance of links...
  EXPECT_EQ(st.hops.max(), static_cast<std::uint64_t>(
                               net::hop_distance(cfg.shape, 0, 17)));
  // ...and the whole packet (head + 3 payload flits) crosses each of them.
  EXPECT_EQ(st.flits, st.hops.max() * (words.size() + 1));
  // Latency: one link per cycle for the head, then the body pipelines out.
  EXPECT_GE(st.latency.min(), st.hops.max() + words.size());
}

TEST(MeshNetwork, HighPriorityOvertakesBlockedLowTraffic) {
  net::MeshNetwork::Config cfg;
  cfg.shape = net::Shape{4, 1, 1};
  cfg.link_buffer_flits = 2;
  net::MeshNetwork mesh(cfg);
  SinkRec sink;
  // A long low-priority packet worms 0 -> 3 first...
  const std::vector<std::uint32_t> low(24, 0x1010);
  mesh.inject(0, 3, mdp::Priority::Low, low, 0, 0);
  run_cycles(mesh, sink, 1, 3);  // its head is well into the mesh
  // ...then a short high-priority packet chases it on the same links.
  const std::vector<std::uint32_t> high = {0x42};
  ASSERT_TRUE(mesh.can_accept(0, 3, mdp::Priority::High));
  mesh.inject(0, 3, mdp::Priority::High, high, 2, 0);
  run_cycles(mesh, sink, 3, 256);
  ASSERT_EQ(sink.deliveries.size(), 2u);
  EXPECT_EQ(sink.deliveries[0].p, mdp::Priority::High)
      << "the high virtual network must not queue behind low flits";
  EXPECT_EQ(sink.deliveries[0].words, high);
  EXPECT_EQ(sink.deliveries[1].p, mdp::Priority::Low);
  EXPECT_EQ(sink.deliveries[1].words, low);
  EXPECT_LT(sink.deliveries[0].cycle, sink.deliveries[1].cycle);
}

TEST(MeshNetwork, InjectionChannelBackpressures) {
  net::MeshNetwork::Config cfg;
  cfg.shape = net::Shape{2, 1, 1};
  net::MeshNetwork mesh(cfg);
  SinkRec sink;
  mesh.inject(0, 1, mdp::Priority::Low, std::vector<std::uint32_t>(8, 7), 0,
              0);
  // The injection channel holds one packet per virtual network: a second
  // low-priority SENDE must wait, while the high VN stays open.
  EXPECT_FALSE(mesh.can_accept(0, 1, mdp::Priority::Low));
  EXPECT_TRUE(mesh.can_accept(0, 1, mdp::Priority::High));
  EXPECT_TRUE(mesh.can_accept(1, 0, mdp::Priority::Low));
  run_cycles(mesh, sink, 1, 32);
  EXPECT_TRUE(mesh.can_accept(0, 1, mdp::Priority::Low));
  EXPECT_EQ(sink.deliveries.size(), 1u);
}

TEST(IdealNetwork, BoundedWireStallsAndRecovers) {
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions unbounded;
  unbounded.num_nodes = 4;
  driver::MultiOptions bounded = unbounded;
  bounded.max_inflight_messages = 1;
  driver::MultiRunResult free_run = driver::run_workload_multi(w, opts, unbounded);
  driver::MultiRunResult tight = driver::run_workload_multi(w, opts, bounded);
  ASSERT_TRUE(free_run.ok()) << free_run.check_error;
  ASSERT_TRUE(tight.ok()) << tight.check_error;
  EXPECT_EQ(free_run.stalled_sends, 0u);
  EXPECT_EQ(free_run.injection_stall_cycles, 0u);
  EXPECT_GT(tight.stalled_sends, 0u)
      << "a one-message wire must reject-then-retry overlapping sends";
  EXPECT_GE(tight.injection_stall_cycles, tight.stalled_sends);
  EXPECT_GT(tight.rounds, free_run.rounds);
  EXPECT_EQ(tight.messages, free_run.messages);
}

// Golden pin: the default (ideal, unbounded, latency-16) network must stay
// bit-identical to the pre-seam constant-latency MultiMachine.  These
// numbers were captured at the commit that introduced the seam.
TEST(IdealNetwork, MatchesPreSeamGoldenNumbers) {
  struct Golden {
    const char* key;
    int backend;  // 0 = MD, 1 = AM
    int nodes;
    std::uint64_t rounds, messages, instructions;
    std::uint32_t halt;
  };
  const Golden golden[] = {
      {"mmt6", 0, 2, 24855ull, 465ull, 40193ull, 3225419776u},
      {"mmt6", 0, 4, 18915ull, 620ull, 40193ull, 3225419776u},
      {"mmt6", 1, 2, 33927ull, 465ull, 57461ull, 3225419776u},
      {"mmt6", 1, 4, 25186ull, 620ull, 58978ull, 3225419776u},
      {"qs24", 0, 2, 11004ull, 188ull, 13324ull, 24u},
      {"qs24", 0, 4, 10561ull, 259ull, 13333ull, 24u},
      {"qs24", 1, 2, 21377ull, 187ull, 28208ull, 24u},
      {"qs24", 1, 4, 20387ull, 259ull, 29115ull, 24u},
      {"wf", 0, 2, 19477ull, 360ull, 18337ull, 52430u},
      {"wf", 0, 4, 19355ull, 540ull, 18343ull, 52430u},
      {"wf", 1, 2, 32746ull, 360ull, 32451ull, 52430u},
      {"wf", 1, 4, 32904ull, 540ull, 33249ull, 52430u},
  };
  for (const Golden& g : golden) {
    programs::Workload w = std::string(g.key) == "mmt6"
                               ? programs::make_mmt(6)
                               : std::string(g.key) == "qs24"
                                     ? programs::make_quicksort(24)
                                     : programs::make_wavefront(8, 2);
    driver::RunOptions opts;
    opts.backend = g.backend == 0 ? rt::BackendKind::MessageDriven
                                  : rt::BackendKind::ActiveMessages;
    driver::MultiRunResult r = driver::run_workload_multi(w, opts, g.nodes);
    ASSERT_TRUE(r.ok()) << g.key << ": " << r.check_error;
    EXPECT_EQ(r.rounds, g.rounds) << g.key << " n=" << g.nodes;
    EXPECT_EQ(r.messages, g.messages) << g.key << " n=" << g.nodes;
    EXPECT_EQ(r.total_instructions, g.instructions)
        << g.key << " n=" << g.nodes;
    EXPECT_EQ(r.halt_value, g.halt) << g.key << " n=" << g.nodes;
  }
}

void expect_identical(const driver::MultiRunResult& a,
                      const driver::MultiRunResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.per_node_instructions, b.per_node_instructions);
  EXPECT_EQ(a.per_node_injection_stalls, b.per_node_injection_stalls);
  EXPECT_EQ(a.stalled_sends, b.stalled_sends);
  // The whole network block — messages, flits, cycles, histograms,
  // per-link counters and the aggregation stats — in one comparison.
  EXPECT_TRUE(a.net_stats == b.net_stats)
      << a.net_stats.summary() << "\n  vs\n" << b.net_stats.summary();
}

TEST(MultiNodeDeterminism, RepeatedRunsAreBitIdentical) {
  for (net::NetKind kind : {net::NetKind::Ideal, net::NetKind::Mesh}) {
    for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                    rt::BackendKind::ActiveMessages}) {
      programs::Workload w = programs::make_mmt(6);
      driver::RunOptions opts;
      opts.backend = backend;
      driver::MultiOptions mo;
      mo.num_nodes = 4;
      mo.net = kind;
      driver::MultiRunResult r1 = driver::run_workload_multi(w, opts, mo);
      driver::MultiRunResult r2 = driver::run_workload_multi(w, opts, mo);
      ASSERT_TRUE(r1.ok()) << r1.check_error;
      expect_identical(r1, r2);
    }
  }
}

TEST(MultiNodeDeadlock, ReportedDistinctlyFromBudgetWithNodeState) {
  // One boot message whose handler just consumes it and suspends: after it
  // runs, every node is idle with nothing in flight — a global deadlock,
  // which must not be confused with max_rounds expiry.
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  a.suspend();
  mdp::CodeImage img = a.link();

  mdp::MultiMachine::Config mc;
  mc.num_nodes = 2;
  mdp::MultiMachine stuck(img, mc);
  std::uint32_t boot[] = {img.symbol("entry")};
  stuck.node(0).inject(mdp::Priority::Low, boot);
  EXPECT_EQ(stuck.run(), mdp::RunStatus::Deadlock);
  EXPECT_NE(stuck.deadlock_report(), "");
  EXPECT_NE(stuck.deadlock_report().find("node 0"), std::string::npos);
  EXPECT_NE(stuck.deadlock_report().find("node 1"), std::string::npos);
  EXPECT_NE(stuck.deadlock_report().find("idle"), std::string::npos);

  // The same ensemble stopped by the round budget reports Budget and
  // leaves the deadlock report empty.
  mc.max_rounds = 1;
  mdp::MultiMachine capped(img, mc);
  capped.node(0).inject(mdp::Priority::Low, boot);
  EXPECT_EQ(capped.run(), mdp::RunStatus::Budget);
  EXPECT_EQ(capped.deadlock_report(), "");
}

TEST(MultiNodeDeadlock, DriverSurfacesPerNodeState) {
  // A deadlocking "workload": its boot handler suspends without halting.
  // Routed through run_workload_multi the per-node state must appear in
  // check_error.
  programs::Workload w = programs::make_mmt(4);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.max_instructions = 2000;  // rounds budget: expires mid-run
  driver::MultiRunResult r = driver::run_workload_multi(w, opts, 4);
  EXPECT_EQ(r.status, mdp::RunStatus::Budget);
  EXPECT_EQ(r.deadlock_report, "");
  EXPECT_NE(r.check_error.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace jtam
