// Unit tests for frame layouts and the runtime data layout constants.

#include <gtest/gtest.h>

#include "runtime/layout.h"
#include "tam/ir.h"

namespace jtam::rt {
namespace {

tam::Codeblock make_cb(int slots, std::vector<int> entry_counts) {
  tam::Program p;
  p.name = "t";
  tam::CodeblockBuilder cb(p, "cb", slots);
  std::vector<tam::ThreadId> ts;
  for (int ec : entry_counts) {
    ts.push_back(cb.declare_thread("t" + std::to_string(ts.size()), ec));
  }
  for (tam::ThreadId t : ts) {
    tam::BodyBuilder b = cb.define_thread(t);
    b.stop();
  }
  cb.finish();
  return p.codeblocks[0];
}

TEST(FrameLayout, MdFrameIsHeaderDataEcSpills) {
  tam::Codeblock cb = make_cb(3, {1, 2, 5, 1});
  FrameLayout fl =
      compute_frame_layout(cb, BackendKind::MessageDriven, /*spills=*/2);
  EXPECT_EQ(fl.data_off, 4);          // link word only
  EXPECT_EQ(fl.ec_off, 4 + 12);       // after 3 data slots
  EXPECT_EQ(fl.num_ec, 2);            // two synchronizing threads
  EXPECT_EQ(fl.spill_off, fl.ec_off + 8);
  EXPECT_EQ(fl.frame_bytes, fl.spill_off + 8);
  EXPECT_EQ(fl.rcv_cap, 0);
}

TEST(FrameLayout, AmFrameAddsTheRcvAtAFixedPosition) {
  tam::Codeblock cb = make_cb(2, {1, 3});
  FrameLayout fl =
      compute_frame_layout(cb, BackendKind::ActiveMessages, /*spills=*/0);
  // The RCV sits right after the two header words so the generic scheduler
  // can copy it without per-codeblock information.
  EXPECT_EQ(kAmRcvBaseOff, 8);
  EXPECT_EQ(fl.rcv_cap, 2 + 4);  // threads + slack
  EXPECT_EQ(fl.data_off, kAmRcvBaseOff + 4 * fl.rcv_cap);
  EXPECT_GT(fl.frame_bytes,
            compute_frame_layout(cb, BackendKind::MessageDriven, 0)
                .frame_bytes);
}

TEST(FrameLayout, HybridUsesTheAmShape) {
  tam::Codeblock cb = make_cb(1, {1});
  FrameLayout fl = compute_frame_layout(cb, BackendKind::Hybrid, 0);
  EXPECT_GT(fl.rcv_cap, 0);
}

TEST(FrameLayout, EcIndexingAndInitValues) {
  tam::Codeblock cb = make_cb(0, {1, 4, 1, 7});
  FrameLayout fl =
      compute_frame_layout(cb, BackendKind::MessageDriven, 0);
  EXPECT_EQ(fl.ec_index_of_thread[0], -1);
  EXPECT_EQ(fl.ec_index_of_thread[1], 0);
  EXPECT_EQ(fl.ec_index_of_thread[2], -1);
  EXPECT_EQ(fl.ec_index_of_thread[3], 1);
  EXPECT_EQ(fl.ec_init[0], 4);
  EXPECT_EQ(fl.ec_init[1], 7);
  EXPECT_TRUE(fl.thread_is_sync(1));
  EXPECT_FALSE(fl.thread_is_sync(2));
  EXPECT_EQ(fl.ec_byte_off(3), fl.ec_off + 4);
}

TEST(Layout, OsGlobalsAreDisjointWords) {
  const mem::Addr globals[] = {kGlLcvTop,  kGlCurFrame, kGlSchedActive,
                               kGlFqHead,  kGlFqTail,   kGlHeapBump,
                               kGlNodeId,  kGlFreeHeads};
  for (std::size_t i = 0; i < std::size(globals); ++i) {
    for (std::size_t j = i + 1; j < std::size(globals); ++j) {
      EXPECT_NE(globals[i], globals[j]);
    }
    EXPECT_EQ(globals[i] % 4, 0u);
    EXPECT_GE(globals[i], mem::kOsGlobalsBase);
  }
  // The free-list head array must fit inside the globals page.
  EXPECT_LE(kGlFreeHeads + 4 * kMaxCodeblocks,
            mem::kOsGlobalsBase + mem::kOsGlobalsBytes);
}

TEST(Layout, BackendNames) {
  EXPECT_STREQ(backend_name(BackendKind::ActiveMessages), "AM");
  EXPECT_STREQ(backend_name(BackendKind::MessageDriven), "MD");
  EXPECT_STREQ(backend_name(BackendKind::Hybrid), "OAM");
}

}  // namespace
}  // namespace jtam::rt
