// Equivalence of the batched trace pipeline with the seed per-event path.
//
// The whole point of the batched/sharded pipeline is that it changes *how
// fast* the reference stream is consumed, never *what* is measured: the
// cache simulator is deterministic and shards share no state, so every
// per-config CacheStats, every access count and every granularity figure
// must be bit-identical across
//   (a) the seed per-event TraceSink path,
//   (b) the batched pipeline consumed serially, and
//   (c) the batched pipeline sharded across a worker pool.
// This file enforces that on real workload runs under both back-ends.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "driver/experiment.h"
#include "programs/registry.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

programs::Scale quick_scale() {
  return programs::Scale{12, 60, 10, 10, 12, 2, 40};
}

programs::Workload workload_by_name(const std::string& name) {
  for (programs::Workload& w : programs::paper_workloads(quick_scale())) {
    if (w.name == name) return w;
  }
  ADD_FAILURE() << "no workload named " << name;
  return {};
}

void expect_identical(const driver::RunResult& a, const driver::RunResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.check_error, b.check_error);
  EXPECT_EQ(a.instructions, b.instructions);

  // Granularity, field by field.
  EXPECT_EQ(a.gran.threads, b.gran.threads);
  EXPECT_EQ(a.gran.inlets, b.gran.inlets);
  EXPECT_EQ(a.gran.quanta, b.gran.quanta);
  EXPECT_EQ(a.gran.activations, b.gran.activations);
  EXPECT_EQ(a.gran.fp_calls, b.gran.fp_calls);
  EXPECT_EQ(a.gran.thread_instrs, b.gran.thread_instrs);
  EXPECT_EQ(a.gran.inlet_instrs, b.gran.inlet_instrs);
  EXPECT_EQ(a.gran.sched_instrs, b.gran.sched_instrs);
  EXPECT_EQ(a.gran.handler_instrs, b.gran.handler_instrs);
  EXPECT_EQ(a.gran.quantum_instrs, b.gran.quantum_instrs);

  // Access counts per (level, region).
  for (int l = 0; l < metrics::kNumLevels; ++l) {
    for (int rg = 0; rg < metrics::kNumRegions; ++rg) {
      EXPECT_EQ(a.counts.fetch[l][rg], b.counts.fetch[l][rg])
          << "fetch[" << l << "][" << rg << "]";
      EXPECT_EQ(a.counts.read[l][rg], b.counts.read[l][rg])
          << "read[" << l << "][" << rg << "]";
      EXPECT_EQ(a.counts.write[l][rg], b.counts.write[l][rg])
          << "write[" << l << "][" << rg << "]";
    }
  }

  // Every cache configuration: accesses, misses, writebacks for I and D.
  ASSERT_EQ(a.cache.size(), b.cache.size());
  for (std::size_t i = 0; i < a.cache.size(); ++i) {
    SCOPED_TRACE(a.cache[i].config.name());
    EXPECT_EQ(a.cache[i].config.size_bytes, b.cache[i].config.size_bytes);
    EXPECT_EQ(a.cache[i].config.assoc, b.cache[i].config.assoc);
    EXPECT_EQ(a.cache[i].icache.accesses, b.cache[i].icache.accesses);
    EXPECT_EQ(a.cache[i].icache.misses, b.cache[i].icache.misses);
    EXPECT_EQ(a.cache[i].icache.writebacks, b.cache[i].icache.writebacks);
    EXPECT_EQ(a.cache[i].dcache.accesses, b.cache[i].dcache.accesses);
    EXPECT_EQ(a.cache[i].dcache.misses, b.cache[i].dcache.misses);
    EXPECT_EQ(a.cache[i].dcache.writebacks, b.cache[i].dcache.writebacks);
  }
}

class PipelineEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, rt::BackendKind>> {
};

TEST_P(PipelineEquivalence, BatchedAndShardedMatchSeedPath) {
  const programs::Workload w = workload_by_name(std::get<0>(GetParam()));
  driver::RunOptions opts;
  opts.backend = std::get<1>(GetParam());

  opts.batched_trace = false;
  const driver::RunResult seed = driver::run_workload(w, opts);
  ASSERT_TRUE(seed.ok()) << seed.check_error;

  opts.batched_trace = true;
  opts.cache_workers = 1;  // serial batch consumption
  const driver::RunResult batched = driver::run_workload(w, opts);

  opts.cache_workers = 3;  // sharded across the worker pool
  const driver::RunResult sharded = driver::run_workload(w, opts);

  expect_identical(seed, batched, "seed vs batched-serial");
  expect_identical(seed, sharded, "seed vs batched-sharded");
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineEquivalence,
    ::testing::Combine(::testing::Values("qs", "paraffins"),
                       ::testing::Values(rt::BackendKind::MessageDriven,
                                         rt::BackendKind::ActiveMessages)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             (std::get<1>(info.param) == rt::BackendKind::MessageDriven
                  ? "MD"
                  : "AM");
    });

TEST(RunMany, MemoizesIdenticalRequests) {
  driver::clear_run_memo();
  const programs::Workload qs = workload_by_name("qs");

  driver::RunOptions md;
  md.backend = rt::BackendKind::MessageDriven;
  driver::RunOptions am;
  am.backend = rt::BackendKind::ActiveMessages;

  // Duplicate within one batch: the pair must simulate once and alias.
  std::vector<driver::RunResult> first =
      driver::run_many({{qs, md}, {qs, md}, {qs, am}});
  driver::RunMemoStats s1 = driver::run_memo_stats();
  EXPECT_EQ(s1.misses, 2u);  // qs/MD and qs/AM
  EXPECT_EQ(s1.hits, 1u);    // the in-batch duplicate
  expect_identical(first[0], first[1], "in-batch duplicate");

  // A second batch with the same requests is served from the memo.
  std::vector<driver::RunResult> second =
      driver::run_many({{qs, md}, {qs, am}});
  driver::RunMemoStats s2 = driver::run_memo_stats();
  EXPECT_EQ(s2.misses, 2u);
  EXPECT_EQ(s2.hits, 3u);
  expect_identical(first[0], second[0], "memoized MD");
  expect_identical(first[2], second[1], "memoized AM");

  // Different result-relevant options miss the memo.
  driver::RunOptions small_blocks = md;
  small_blocks.block_bytes = 16;
  (void)driver::run_many({{qs, small_blocks}});
  EXPECT_EQ(driver::run_memo_stats().misses, 3u);
  driver::clear_run_memo();
}

TEST(RunMany, MatchesDirectRunWorkload) {
  driver::clear_run_memo();
  const programs::Workload w = workload_by_name("paraffins");
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  const driver::RunResult direct = driver::run_workload(w, opts);
  const std::vector<driver::RunResult> via = driver::run_many({{w, opts}});
  ASSERT_EQ(via.size(), 1u);
  expect_identical(direct, via[0], "run_many vs run_workload");
  driver::clear_run_memo();
}

}  // namespace
