// Integration tests of the compiled runtime: scheduling semantics that
// span compiler + kernel + machine (Figure 1 behaviour, atomicity, frame
// recycling, halt truncation).

#include <gtest/gtest.h>

#include <vector>

#include "driver/experiment.h"
#include "programs/registry.h"

namespace jtam {
namespace {

/// Records the order of scheduling marks.
class OrderSink final : public mdp::TraceSink {
 public:
  struct Event {
    mdp::MarkKind kind;
    std::uint32_t frame;
    mdp::Priority level;
  };
  void on_fetch(mem::Addr, mdp::Priority) override {}
  void on_read(mem::Addr, mdp::Priority) override {}
  void on_write(mem::Addr, mdp::Priority) override {}
  void on_mark(mdp::MarkKind k, std::uint32_t aux,
               mdp::Priority lvl) override {
    if (k != mdp::MarkKind::FpCall) events.push_back({k, aux, lvl});
  }
  std::vector<Event> events;
};

OrderSink::Event first_of(const std::vector<OrderSink::Event>& ev,
                          mdp::MarkKind k) {
  for (const auto& e : ev) {
    if (e.kind == k) return e;
  }
  ADD_FAILURE() << "no such event";
  return {};
}

TEST(RuntimeIntegration, AmInletsRunAtHighPriorityMdAtLow) {
  programs::Workload w = programs::make_selection_sort(6);
  for (rt::BackendKind backend : {rt::BackendKind::ActiveMessages,
                                  rt::BackendKind::MessageDriven}) {
    driver::RunOptions opts;
    opts.backend = backend;
    opts.with_cache = false;
    driver::PreparedRun prep = driver::prepare_run(w, opts);
    OrderSink sink;
    prep.machine->set_sink(&sink);
    ASSERT_EQ(prep.machine->run(), mdp::RunStatus::Halted);
    const auto inlet = first_of(sink.events, mdp::MarkKind::InletStart);
    if (backend == rt::BackendKind::ActiveMessages) {
      EXPECT_EQ(inlet.level, mdp::Priority::High);
    } else {
      EXPECT_EQ(inlet.level, mdp::Priority::Low);
    }
  }
}

TEST(RuntimeIntegration, AmActivatesFramesMdNever) {
  programs::Workload w = programs::make_mmt(3);
  for (rt::BackendKind backend : {rt::BackendKind::ActiveMessages,
                                  rt::BackendKind::MessageDriven}) {
    driver::RunOptions opts;
    opts.backend = backend;
    opts.with_cache = false;
    driver::RunResult r = driver::run_workload(w, opts);
    ASSERT_TRUE(r.ok()) << r.check_error;
    if (backend == rt::BackendKind::ActiveMessages) {
      EXPECT_GT(r.gran.activations, 0u);
    } else {
      EXPECT_EQ(r.gran.activations, 0u);
    }
  }
}

TEST(RuntimeIntegration, MdInletsWaitForTheLcvToDrain) {
  // Figure 1(b): under MD "none of the inlets would be executed until the
  // LCV is emptied" — an inlet never appears at low priority between two
  // threads of a still-running LCV chain.  Observable invariant: a low-
  // priority InletStart is never immediately followed by a ThreadStart of
  // a *different* frame without an intervening system event (the stop
  // stub), because control flows inlet -> own thread.
  programs::Workload w = programs::make_mmt(3);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.with_cache = false;
  driver::PreparedRun prep = driver::prepare_run(w, opts);
  OrderSink sink;
  prep.machine->set_sink(&sink);
  ASSERT_EQ(prep.machine->run(), mdp::RunStatus::Halted);
  for (std::size_t i = 0; i + 1 < sink.events.size(); ++i) {
    const auto& a = sink.events[i];
    const auto& b = sink.events[i + 1];
    if (a.kind == mdp::MarkKind::InletStart &&
        a.level == mdp::Priority::Low &&
        b.kind == mdp::MarkKind::ThreadStart) {
      EXPECT_EQ(a.frame, b.frame)
          << "an MD inlet handed control to a foreign thread";
    }
  }
}

TEST(RuntimeIntegration, FrameRecyclingKeepsHeapBounded) {
  // Quicksort releases every activation frame; the free lists must cap
  // heap growth well below frames-allocated x frame-size.
  programs::Workload w = programs::make_quicksort(60);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.with_cache = false;
  driver::PreparedRun prep = driver::prepare_run(w, opts);
  const std::uint32_t heap_before =
      prep.machine->load_word(rt::kGlHeapBump);
  ASSERT_EQ(prep.machine->run(), mdp::RunStatus::Halted);
  const std::uint32_t heap_after = prep.machine->load_word(rt::kGlHeapBump);
  // ~120 activations of ~30-word frames would be ~14 KB without reuse;
  // with recycling the live set is the recursion depth, far smaller.
  EXPECT_LT(heap_after - heap_before, 10000u);
}

TEST(RuntimeIntegration, QueueHighWaterTracksBackendStructure) {
  programs::Workload w = programs::make_dtw(8);
  driver::RunOptions opts;
  opts.with_cache = false;
  driver::BackendPair p = driver::run_both(w, opts);
  ASSERT_TRUE(p.md.ok() && p.am.ok());
  // MD parks work in the low queue; AM's low queue holds only scheduler
  // wakeups (a single 4-byte message at a time).
  EXPECT_GT(p.md.queue_high_water[0], 64u);
  EXPECT_LE(p.am.queue_high_water[0], 8u);
}

TEST(RuntimeIntegration, LargerProblemsScaleInstructionsSuperlinearly) {
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::RunResult small =
      driver::run_workload(programs::make_selection_sort(20), opts);
  driver::RunResult large =
      driver::run_workload(programs::make_selection_sort(40), opts);
  ASSERT_TRUE(small.ok() && large.ok());
  // Selection sort is O(n^2): 2x elements -> ~4x instructions.
  const double growth = static_cast<double>(large.instructions) /
                        static_cast<double>(small.instructions);
  EXPECT_GT(growth, 3.0);
  EXPECT_LT(growth, 5.0);
}

TEST(RuntimeIntegration, CustomQueueSizeIsRespected) {
  programs::Workload w = programs::make_selection_sort(12);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.with_cache = false;
  opts.queue_bytes = 512;  // still enough for this tiny run
  driver::RunResult r = driver::run_workload(w, opts);
  EXPECT_TRUE(r.ok()) << r.check_error;
  EXPECT_LE(r.queue_high_water[0], 512u);
}

}  // namespace
}  // namespace jtam

namespace jtam {
namespace {

TEST(RuntimeIntegration, RcvPostsAreSetSemantics) {
  // Regression: under the enabled AM variant a long row quantum lets many
  // completions post main's collector thread while main is inactive; the
  // ready list must merge duplicate enables instead of overflowing into
  // the frame's data slots (which once turned a float partial sum into a
  // "thread address").
  programs::Workload w = programs::make_mmt(18);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::ActiveMessages;
  opts.am_enabled_variant = true;
  opts.with_cache = false;
  driver::RunResult r = driver::run_workload(w, opts);
  EXPECT_TRUE(r.ok()) << r.check_error;
}

}  // namespace
}  // namespace jtam
