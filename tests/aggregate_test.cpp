// The aggregation + placement subsystem (net/aggregate, mdp/placement):
// the off/round-robin bit-identity pin across every program, back-end and
// network, the aggregated runs' oracle matrix, flow-tracing invariants
// with aggregation on, and behavioural unit tests of the coalescing
// buffers (flush causes, priority bypass, relay forwarding, double-
// buffered backpressure) and of each placement policy.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "mdp/placement.h"
#include "net/aggregate.h"
#include "net/ideal.h"
#include "net/topology.h"
#include "obs/critical_path.h"
#include "obs/flow.h"
#include "programs/registry.h"

namespace jtam {
namespace {

programs::Workload small_workload(const std::string& name) {
  if (name == "mmt") return programs::make_mmt(6);
  if (name == "qs") return programs::make_quicksort(24);
  if (name == "dtw") return programs::make_dtw(7);
  if (name == "paraffins") return programs::make_paraffins(8);
  if (name == "wavefront") return programs::make_wavefront(8, 2);
  return programs::make_selection_sort(16);
}

const char* kPrograms[] = {"mmt", "qs", "dtw", "paraffins", "wavefront",
                           "sort"};

void expect_bit_identical(const driver::MultiRunResult& a,
                          const driver::MultiRunResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.halt_value, b.halt_value) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.total_instructions, b.total_instructions) << what;
  EXPECT_EQ(a.per_node_instructions, b.per_node_instructions) << what;
  EXPECT_EQ(a.per_node_injection_stalls, b.per_node_injection_stalls) << what;
  EXPECT_EQ(a.injection_stall_cycles, b.injection_stall_cycles) << what;
  EXPECT_EQ(a.stalled_sends, b.stalled_sends) << what;
  EXPECT_TRUE(a.net_stats == b.net_stats)
      << what << ":\n  " << a.net_stats.summary() << "\n  vs\n  "
      << b.net_stats.summary();
}

// The acceptance pin: agg=off + placement=rr, spelled out explicitly, is
// bit-identical to the flagless default across every program, both
// back-ends and both network models — the new subsystem is invisible
// until asked for.
TEST(AggregatePin, OffRoundRobinIsBitIdenticalToDefaults) {
  for (const char* prog : kPrograms) {
    for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                    rt::BackendKind::ActiveMessages}) {
      for (net::NetKind kind : {net::NetKind::Ideal, net::NetKind::Mesh}) {
        programs::Workload w = small_workload(prog);
        driver::RunOptions opts;
        opts.backend = backend;
        driver::MultiOptions defaults;
        defaults.num_nodes = 4;
        defaults.net = kind;
        driver::MultiOptions spelled = defaults;
        spelled.agg = net::AggMode::Off;
        spelled.placement.kind = mdp::PlacementKind::RoundRobin;
        const driver::MultiRunResult a =
            driver::run_workload_multi(w, opts, defaults);
        const driver::MultiRunResult b =
            driver::run_workload_multi(w, opts, spelled);
        ASSERT_TRUE(a.ok()) << prog << ": " << a.check_error;
        expect_bit_identical(
            a, b,
            std::string(prog) + "/" +
                (backend == rt::BackendKind::MessageDriven ? "md" : "am") +
                "/" + net::net_kind_name(kind));
        EXPECT_TRUE(b.net_stats.agg == net::AggStats{})
            << "agg stats must stay zero with aggregation off";
        EXPECT_EQ(b.net_stats.agg.summary(), "off");
      }
    }
  }
}

// With aggregation on, runs still satisfy their oracles on every
// back-end x network x mode combination, and the aggregation accounting
// is internally consistent: every low message was bundled, every high
// message bypassed, and constituents delivered equal the histograms'
// populations.
class AggMatrix : public testing::TestWithParam<
                      std::tuple<rt::BackendKind, net::NetKind, net::AggMode>> {
};

TEST_P(AggMatrix, AggregatedRunsPassOraclesWithConsistentAccounting) {
  const auto [backend, kind, mode] = GetParam();
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = backend;
  driver::MultiOptions mopts;
  mopts.num_nodes = 8;
  mopts.net = kind;
  driver::MultiRunResult off = driver::run_workload_multi(w, opts, mopts);
  mopts.agg = mode;
  mopts.agg_bytes = 64;
  mopts.agg_timeout = 8;
  driver::MultiRunResult on = driver::run_workload_multi(w, opts, mopts);
  ASSERT_TRUE(off.ok()) << off.check_error;
  ASSERT_TRUE(on.ok()) << on.check_error;
  EXPECT_EQ(on.halt_value, off.halt_value);

  const net::AggStats& agg = on.net_stats.agg;
  if (backend == rt::BackendKind::ActiveMessages) {
    // AM inlets are interrupt-style handlers on the high-priority queue
    // (rt::inlet_queue), and high traffic always bypasses coalescing —
    // so under AM aggregation is a transparent no-op: everything
    // bypasses, nothing bundles, and the measured run is unchanged.
    EXPECT_EQ(agg.bundles, 0u);
    EXPECT_EQ(agg.bundled_messages, 0u);
    EXPECT_EQ(agg.bypass_messages, on.messages);
    EXPECT_EQ(on.rounds, off.rounds);
    EXPECT_TRUE(on.net_stats.hops == off.net_stats.hops);
    EXPECT_TRUE(on.net_stats.latency == off.net_stats.latency);
    return;
  }
  // MD rides the low-priority task queue, so its traffic coalesces.
  EXPECT_GT(agg.bundles, 0u);
  EXPECT_GT(agg.bundled_messages, 0u);
  EXPECT_EQ(agg.bundles, agg.flush_size + agg.flush_timeout);
  EXPECT_EQ(agg.bundles, agg.bundle_messages.count());
  EXPECT_EQ(agg.bundles, agg.bundle_words.count());
  // Every network message went one way or the other.
  EXPECT_EQ(agg.bundled_messages + agg.bypass_messages, on.messages);
  // Constituent-level delivery stats: one histogram entry per delivered
  // message (bundled or bypassing), never per bundle.
  EXPECT_EQ(on.net_stats.messages, on.net_stats.hops.count());
  EXPECT_EQ(on.net_stats.messages, on.net_stats.latency.count());
  EXPECT_LE(on.net_stats.messages, on.messages)
      << "each constituent is counted once, at its final delivery";
  if (mode == net::AggMode::Dest) {
    EXPECT_EQ(agg.relay_forwards, 0u)
        << "destination mode never forwards through a relay";
  }
  // Aggregation coalesces: fewer inner-network packets than messages
  // (bundle_messages.mean() > 1 whenever any coalescing happened).
  EXPECT_LE(agg.bundles, agg.bundled_messages + agg.relay_forwards);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, AggMatrix,
    testing::Combine(testing::Values(rt::BackendKind::MessageDriven,
                                     rt::BackendKind::ActiveMessages),
                     testing::Values(net::NetKind::Ideal, net::NetKind::Mesh),
                     testing::Values(net::AggMode::Dest, net::AggMode::Relay)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 rt::BackendKind::MessageDriven
                             ? "Md"
                             : "Am") +
             (std::get<1>(info.param) == net::NetKind::Ideal ? "Ideal"
                                                             : "Mesh") +
             (std::get<2>(info.param) == net::AggMode::Dest ? "Dest"
                                                            : "Relay");
    });

// Flow tracing composes with aggregation: per-constituent fan-out keeps
// every tie-out and the critical-path partition invariant intact.
class AggFlow
    : public testing::TestWithParam<std::tuple<net::NetKind, net::AggMode>> {};

TEST_P(AggFlow, FlowSpansStillTieOutAndPartitionTheRun) {
  const auto [kind, mode] = GetParam();
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions mopts;
  mopts.num_nodes = 8;
  mopts.net = kind;
  mopts.agg = mode;
  mopts.agg_bytes = 64;
  mopts.agg_timeout = 8;
  mopts.flow.enabled = true;
  const driver::MultiRunResult r = driver::run_workload_multi(w, opts, mopts);
  ASSERT_TRUE(r.ok()) << r.check_error;
  ASSERT_NE(r.flow, nullptr);
  const obs::FlowTrace& tr = *r.flow;

  // Tracing must not change measured numbers (spot check: same run
  // without the tracer).
  driver::MultiOptions untraced = mopts;
  untraced.flow = obs::FlowOptions{};
  const driver::MultiRunResult off =
      driver::run_workload_multi(w, opts, untraced);
  EXPECT_EQ(r.rounds, off.rounds);
  EXPECT_TRUE(r.net_stats == off.net_stats);

  // Per-message hop/latency records rebuild the constituent-level
  // NetStats histograms bit-exactly, aggregation notwithstanding.
  EXPECT_TRUE(tr.hop_histogram() == r.net_stats.hops);
  EXPECT_TRUE(tr.latency_histogram() == r.net_stats.latency);

  // One traced Remote message per machine-level remote send: bundling is
  // invisible to the causal trace.
  std::uint64_t remote = 0;
  for (const obs::FlowMessage& m : tr.messages) {
    if (m.kind == obs::FlowMsgKind::Remote) ++remote;
    EXPECT_LE(m.send_ts, m.inject_ts);
    if (!m.delivered()) continue;
    EXPECT_LE(m.inject_ts, m.deliver_ts);
    EXPECT_EQ(m.transit(), m.net_latency)
        << "span transit must equal the recorded (end-to-end, buffer-"
           "inclusive) network latency";
  }
  EXPECT_EQ(remote, r.messages);

  // The acceptance invariant: the critical path's components still
  // partition [0, final_round] exactly with aggregation on.
  const obs::CriticalPath path = obs::analyze_critical_path(tr);
  ASSERT_FALSE(path.steps.empty());
  EXPECT_TRUE(path.complete);
  EXPECT_EQ(path.total(), tr.final_round);
  EXPECT_EQ(path.handler + path.inject_wait + path.transit + path.queue_wait,
            r.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Nets, AggFlow,
    testing::Combine(testing::Values(net::NetKind::Ideal, net::NetKind::Mesh),
                     testing::Values(net::AggMode::Dest, net::AggMode::Relay)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == net::NetKind::Ideal
                             ? "Ideal"
                             : "Mesh") +
             (std::get<1>(info.param) == net::AggMode::Dest ? "Dest"
                                                            : "Relay");
    });

// ---------------------------------------------------------------------
// Behavioural unit tests against a bare AggregateNetwork.

struct SinkRec final : net::DeliverySink {
  struct Delivery {
    int dest;
    mdp::Priority p;
    std::vector<std::uint32_t> words;
    std::uint64_t cycle;
  };
  std::vector<Delivery> deliveries;
  std::uint64_t now = 0;
  void deliver(int dest, mdp::Priority p,
               std::span<const std::uint32_t> w) override {
    deliveries.push_back(Delivery{dest, p, {w.begin(), w.end()}, now});
  }
};

std::unique_ptr<net::AggregateNetwork> make_agg(net::Shape shape,
                                                net::AggMode mode,
                                                std::uint32_t flush_bytes,
                                                std::uint32_t flush_timeout,
                                                std::uint32_t latency = 4) {
  net::IdealNetwork::Config ic;
  ic.latency = latency;
  net::AggregateNetwork::Config ac;
  ac.mode = mode;
  ac.shape = shape;
  ac.flush_bytes = flush_bytes;
  ac.flush_timeout = flush_timeout;
  return std::make_unique<net::AggregateNetwork>(
      ac, std::make_unique<net::IdealNetwork>(ic));
}

void run_cycles(net::NetworkModel& nm, SinkRec& sink, std::uint64_t from,
                std::uint64_t to) {
  for (std::uint64_t c = from; c < to; ++c) {
    sink.now = c;
    nm.step(c, sink);
  }
}

TEST(AggregateNetwork, TimeoutFlushCoalescesAndPreservesOrder) {
  auto agg = make_agg(net::Shape{2, 1, 1}, net::AggMode::Dest,
                      /*flush_bytes=*/256, /*flush_timeout=*/4);
  SinkRec sink;
  const std::vector<std::uint32_t> m1 = {0xA1, 0xA2};
  const std::vector<std::uint32_t> m2 = {0xB1};
  const std::vector<std::uint32_t> m3 = {0xC1, 0xC2, 0xC3};
  agg->inject(0, 1, mdp::Priority::Low, m1, 0, 0);
  agg->inject(0, 1, mdp::Priority::Low, m2, 0, 0);
  agg->inject(0, 1, mdp::Priority::Low, m3, 0, 0);
  EXPECT_FALSE(agg->idle());
  run_cycles(*agg, sink, 1, 32);
  EXPECT_TRUE(agg->idle());
  ASSERT_EQ(sink.deliveries.size(), 3u);
  EXPECT_EQ(sink.deliveries[0].words, m1);
  EXPECT_EQ(sink.deliveries[1].words, m2);
  EXPECT_EQ(sink.deliveries[2].words, m3);
  // All three rode one bundle, so they complete on the same cycle.
  EXPECT_EQ(sink.deliveries[0].cycle, sink.deliveries[2].cycle);
  const net::NetStats& st = agg->stats();
  EXPECT_EQ(st.messages, 3u);
  EXPECT_EQ(st.agg.bundles, 1u);
  EXPECT_EQ(st.agg.bundled_messages, 3u);
  EXPECT_EQ(st.agg.flush_timeout, 1u);
  EXPECT_EQ(st.agg.flush_size, 0u);
  EXPECT_EQ(st.agg.bundle_messages.max(), 3u);
  // Framing: count word + (header + payload) per message = 1 + 3+2+4.
  EXPECT_EQ(st.agg.bundle_words.max(), 10u);
  // End-to-end latency spans the buffered wait plus the wire.
  EXPECT_GE(st.latency.min(), 4u + 4u);
}

TEST(AggregateNetwork, SizeThresholdSealsWithoutWaiting) {
  auto agg = make_agg(net::Shape{2, 1, 1}, net::AggMode::Dest,
                      /*flush_bytes=*/16, /*flush_timeout=*/1000);
  SinkRec sink;
  agg->inject(0, 1, mdp::Priority::Low, std::vector<std::uint32_t>(3, 9), 0,
              0);
  run_cycles(*agg, sink, 1, 16);
  ASSERT_EQ(sink.deliveries.size(), 1u);
  const net::NetStats& st = agg->stats();
  EXPECT_EQ(st.agg.flush_size, 1u);
  EXPECT_EQ(st.agg.flush_timeout, 0u);
}

TEST(AggregateNetwork, HighPriorityBypassesFillingBuffers) {
  auto agg = make_agg(net::Shape{2, 1, 1}, net::AggMode::Dest,
                      /*flush_bytes=*/256, /*flush_timeout=*/50);
  SinkRec sink;
  agg->inject(0, 1, mdp::Priority::Low, std::vector<std::uint32_t>{1}, 0, 0);
  agg->inject(0, 1, mdp::Priority::High, std::vector<std::uint32_t>{2}, 0, 0);
  run_cycles(*agg, sink, 1, 128);
  ASSERT_EQ(sink.deliveries.size(), 2u);
  EXPECT_EQ(sink.deliveries[0].p, mdp::Priority::High)
      << "high priority must not wait for a buffer to fill";
  EXPECT_LT(sink.deliveries[0].cycle, sink.deliveries[1].cycle);
  EXPECT_EQ(agg->stats().agg.bypass_messages, 1u);
  EXPECT_EQ(agg->stats().agg.bundled_messages, 1u);
}

TEST(AggregateNetwork, RelayModeForwardsAcrossTheFirstDimensionOnce) {
  // Shape 2x2x1: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1).  A message 0 -> 3
  // gathers at the relay (1,0) = node 1, then re-bundles to 3.
  auto agg = make_agg(net::Shape{2, 2, 1}, net::AggMode::Relay,
                      /*flush_bytes=*/256, /*flush_timeout=*/2);
  SinkRec sink;
  const std::vector<std::uint32_t> diag = {0xD1};
  const std::vector<std::uint32_t> row = {0xB2};
  agg->inject(0, 3, mdp::Priority::Low, diag, 0, 0);
  agg->inject(0, 1, mdp::Priority::Low, row, 0, 0);
  run_cycles(*agg, sink, 1, 64);
  EXPECT_TRUE(agg->idle());
  ASSERT_EQ(sink.deliveries.size(), 2u);
  // Both complete; the diagonal one takes two phases.
  const net::NetStats& st = agg->stats();
  EXPECT_EQ(st.messages, 2u);
  EXPECT_EQ(st.agg.relay_forwards, 1u);
  EXPECT_EQ(st.agg.bundles, 2u);
  for (const SinkRec::Delivery& d : sink.deliveries) {
    if (d.words == diag) EXPECT_EQ(d.dest, 3);
    if (d.words == row) EXPECT_EQ(d.dest, 1);
  }
}

TEST(AggregateNetwork, BackpressuresOnlyWhenBothHalvesAreFull) {
  // flush_bytes=8 -> 2 words: any message seals its buffer immediately.
  auto agg = make_agg(net::Shape{2, 1, 1}, net::AggMode::Dest,
                      /*flush_bytes=*/8, /*flush_timeout=*/100,
                      /*latency=*/32);
  SinkRec sink;
  agg->inject(0, 1, mdp::Priority::Low, std::vector<std::uint32_t>{1}, 0, 0);
  // First bundle sealed (outstanding); the filling half is empty, so the
  // double buffer still accepts...
  EXPECT_TRUE(agg->can_accept(0, 1, mdp::Priority::Low));
  agg->inject(0, 1, mdp::Priority::Low, std::vector<std::uint32_t>{2}, 0, 0);
  // ...but now the filling half is itself at the threshold while the
  // sealed half waits: both halves full, SENDE must stall.
  EXPECT_FALSE(agg->can_accept(0, 1, mdp::Priority::Low));
  EXPECT_TRUE(agg->can_accept(0, 1, mdp::Priority::High))
      << "the high VN is never blocked by coalescing buffers";
  run_cycles(*agg, sink, 1, 128);
  EXPECT_TRUE(agg->can_accept(0, 1, mdp::Priority::Low));
  EXPECT_EQ(sink.deliveries.size(), 2u);
  EXPECT_TRUE(agg->idle());
}

TEST(AggregateNetwork, RepeatedRunsProduceIdenticalStats) {
  net::NetStats first;
  for (int rep = 0; rep < 2; ++rep) {
    auto agg = make_agg(net::Shape{2, 2, 1}, net::AggMode::Relay,
                        /*flush_bytes=*/24, /*flush_timeout=*/3);
    SinkRec sink;
    std::uint64_t flow_id = 0;
    for (int s = 0; s < 4; ++s) {
      for (int d = 0; d < 4; ++d) {
        if (s == d) continue;
        agg->inject(s, d, mdp::Priority::Low,
                    std::vector<std::uint32_t>{static_cast<std::uint32_t>(
                        s * 16 + d)},
                    0, ++flow_id);
      }
    }
    run_cycles(*agg, sink, 1, 256);
    ASSERT_TRUE(agg->idle());
    EXPECT_EQ(sink.deliveries.size(), 12u);
    if (rep == 0) {
      first = agg->stats();
    } else {
      EXPECT_TRUE(agg->stats() == first) << agg->stats().summary();
    }
  }
}

// ---------------------------------------------------------------------
// Placement policies.

TEST(Placement, RoundRobinMatchesTheSeedCounter) {
  auto p = mdp::PlacementPolicy::make(mdp::PlacementConfig{}, /*node=*/1,
                                      /*num_nodes=*/3);
  // The seed counter starts at the owning node and wraps: 1, 2, 0, 1, ...
  const int want[] = {1, 2, 0, 1, 2, 0};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(p->place(0), want[i]) << i;
  }
}

TEST(Placement, NearestCyclesNodesInHopDistanceOrder) {
  mdp::PlacementConfig cfg;
  cfg.kind = mdp::PlacementKind::Nearest;
  auto p = mdp::PlacementPolicy::make(cfg, /*node=*/0, /*num_nodes=*/8);
  // 2x2x2 grid from node 0: self, then the three axis neighbours, then
  // the three face diagonals, then the far corner — ties broken by id.
  const int want[] = {0, 1, 2, 4, 3, 5, 6, 7};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(p->place(0), want[i % 8]) << i;
  }
  // And the ordering really is by hop distance.
  const net::Shape s = net::Shape::for_nodes(8);
  for (int i = 0; i + 1 < 8; ++i) {
    EXPECT_LE(net::hop_distance(s, 0, want[i]),
              net::hop_distance(s, 0, want[i + 1]));
  }
}

TEST(Placement, OwnerComputesIsKeyStableAcrossNodes) {
  mdp::PlacementConfig cfg;
  cfg.kind = mdp::PlacementKind::Owner;
  auto on0 = mdp::PlacementPolicy::make(cfg, 0, 5);
  auto on3 = mdp::PlacementPolicy::make(cfg, 3, 5);
  bool spread = false;
  for (std::uint32_t key = 0; key < 64; ++key) {
    const int n = on0->place(key);
    EXPECT_EQ(n, on3->place(key)) << "every node must agree on the owner";
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 5);
    EXPECT_EQ(n, on0->place(key)) << "placement is a pure function of key";
    if (n != on0->place(0)) spread = true;
  }
  EXPECT_TRUE(spread) << "different codeblocks must land on different owners";
}

TEST(Placement, ClusterFillsTheBudgetBeforeAdvancing) {
  mdp::PlacementConfig cfg;
  cfg.kind = mdp::PlacementKind::Cluster;
  cfg.cluster_budget = 3;
  auto p = mdp::PlacementPolicy::make(cfg, /*node=*/2, /*num_nodes=*/4);
  const int want[] = {2, 2, 2, 3, 3, 3, 0, 0, 0, 1, 1, 1, 2, 2, 2};
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(p->place(0), want[i]) << i;
  }
}

TEST(Placement, KnobsAreNamedForBenchTables) {
  EXPECT_STREQ(mdp::placement_kind_name(mdp::PlacementKind::RoundRobin), "rr");
  EXPECT_STREQ(mdp::placement_kind_name(mdp::PlacementKind::Nearest), "near");
  EXPECT_STREQ(mdp::placement_kind_name(mdp::PlacementKind::Owner), "owner");
  EXPECT_STREQ(mdp::placement_kind_name(mdp::PlacementKind::Cluster),
               "cluster");
  EXPECT_STREQ(net::agg_mode_name(net::AggMode::Off), "off");
  EXPECT_STREQ(net::agg_mode_name(net::AggMode::Dest), "dest");
  EXPECT_STREQ(net::agg_mode_name(net::AggMode::Relay), "relay");
}

// Non-default placement policies keep every workload correct: the frames
// land elsewhere but the computation is location-transparent.
TEST(Placement, AllPoliciesPassTheOracles) {
  for (mdp::PlacementKind kind :
       {mdp::PlacementKind::Nearest, mdp::PlacementKind::Owner,
        mdp::PlacementKind::Cluster}) {
    for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                    rt::BackendKind::ActiveMessages}) {
      programs::Workload w = programs::make_mmt(6);
      driver::RunOptions opts;
      opts.backend = backend;
      driver::MultiOptions mopts;
      mopts.num_nodes = 8;
      mopts.placement.kind = kind;
      const driver::MultiRunResult r =
          driver::run_workload_multi(w, opts, mopts);
      EXPECT_TRUE(r.ok()) << mdp::placement_kind_name(kind) << ": "
                          << r.check_error;
    }
  }
}

}  // namespace
}  // namespace jtam
