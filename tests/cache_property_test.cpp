// Parameterized property tests of the cache simulator over block sizes,
// associativities and synthetic reference patterns, plus randomized
// cross-checks of the single-pass stack engine against SetAssocCache.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cache/cache.h"
#include "cache/cache_bank.h"
#include "cache/stack_sim.h"

namespace jtam::cache {
namespace {

std::vector<std::pair<std::uint32_t, bool>> lcg_stream(int n,
                                                       std::uint32_t seed,
                                                       std::uint32_t mask) {
  std::vector<std::pair<std::uint32_t, bool>> out;
  std::uint32_t x = seed;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    out.emplace_back((x >> 7) & mask & ~3u, (x & 1) != 0);
  }
  return out;
}

using Geometry = std::tuple<std::uint32_t, std::uint32_t>;  // block, assoc

class CacheSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheSweep, MissesNeverExceedAccesses) {
  auto [block, assoc] = GetParam();
  SetAssocCache c(CacheConfig{8192, block, assoc});
  for (auto [a, w] : lcg_stream(20000, 7, 0xFFFF)) c.access(a, w);
  EXPECT_EQ(c.stats().accesses, 20000u);
  EXPECT_LE(c.stats().misses, c.stats().accesses);
  EXPECT_LE(c.stats().writebacks, c.stats().misses);
}

TEST_P(CacheSweep, SequentialScanMissesOncePerBlock) {
  auto [block, assoc] = GetParam();
  SetAssocCache c(CacheConfig{8192, block, assoc});
  const std::uint32_t words = 8192 / 4;  // exactly one cache of data
  for (std::uint32_t i = 0; i < words; ++i) c.read(i * 4);
  EXPECT_EQ(c.stats().misses, 8192u / block);
}

TEST_P(CacheSweep, WorkingSetWithinCapacityHitsAfterWarmup) {
  auto [block, assoc] = GetParam();
  SetAssocCache c(CacheConfig{8192, block, assoc});
  // A 2 KB working set scanned repeatedly fits every geometry.
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint32_t a = 0; a < 2048; a += 4) c.read(a);
  }
  EXPECT_EQ(c.stats().misses, 2048u / block);  // compulsory only
}

TEST_P(CacheSweep, DoublingAssociativityNeverAddsMisses) {
  auto [block, assoc] = GetParam();
  // Same number of sets; LRU stack property per set.
  SetAssocCache small(CacheConfig{4096, block, assoc});
  SetAssocCache big(CacheConfig{8192, block, assoc * 2});
  ASSERT_EQ(small.config().num_sets(), big.config().num_sets());
  for (auto [a, w] : lcg_stream(30000, 99, 0x7FFF)) {
    small.access(a, w);
    big.access(a, w);
  }
  EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Combine(::testing::Values(8u, 16u, 32u, 64u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

class PenaltyMonotonic
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PenaltyMonotonic, LargerCachesNeverifyFewerWritebacksThanMisses) {
  SetAssocCache c(CacheConfig{GetParam(), 64, 2});
  for (auto [a, w] : lcg_stream(50000, 3, 0x3FFFF)) c.access(a, w);
  EXPECT_LE(c.stats().writebacks, c.stats().misses);
  EXPECT_GT(c.stats().hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PenaltyMonotonic,
                         ::testing::ValuesIn(paper_cache_sizes()));

// ---------------------------------------------------------------------------
// StackSim vs SetAssocCache: the stack engine must reproduce every
// access/miss/writeback count exactly, not approximately.

/// One event of a synthetic trace: fetch, read or write.
struct Ref {
  std::uint32_t addr;
  bool is_fetch;
  bool is_write;
};

/// Mixed fetch/read/write stream.  `skewed` draws three quarters of the
/// addresses from a hot 2 KB region (deep reuse, many stack hits at small
/// depths); otherwise addresses are uniform over 256 KB (many cold misses
/// and evictions).
std::vector<Ref> ref_stream(int n, std::uint32_t seed, bool skewed) {
  std::vector<Ref> out;
  out.reserve(static_cast<std::size_t>(n));
  std::uint32_t x = seed;
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    std::uint32_t addr;
    if (skewed && (x & 3u) != 0) {
      addr = (x >> 9) & 0x7FFu & ~3u;
    } else {
      addr = (x >> 7) & 0x3FFFFu & ~3u;
    }
    out.push_back(Ref{addr, (x & 4u) != 0, (x & 8u) != 0});
  }
  return out;
}

/// Drive one stream through both engines and compare every configuration.
void cross_check(const std::vector<CacheConfig>& configs,
                 const std::vector<Ref>& refs, const std::string& what) {
  SCOPED_TRACE(what);
  StackSimBank stack(configs);
  CacheBank classic(configs);
  for (const Ref& r : refs) {
    if (r.is_fetch) {
      stack.on_fetch(r.addr);
      classic.on_fetch(r.addr);
    } else {
      stack.on_data(r.addr, r.is_write);
      classic.on_data(r.addr, r.is_write);
    }
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(configs[i].name());
    const CacheStats si = stack.istats(i);
    const CacheStats sd = stack.dstats(i);
    const CacheStats& ci = classic.at(i).icache.stats();
    const CacheStats& cd = classic.at(i).dcache.stats();
    EXPECT_EQ(si.accesses, ci.accesses);
    EXPECT_EQ(si.misses, ci.misses);
    EXPECT_EQ(si.writebacks, ci.writebacks);
    EXPECT_EQ(sd.accesses, cd.accesses);
    EXPECT_EQ(sd.misses, cd.misses);
    EXPECT_EQ(sd.writebacks, cd.writebacks);
  }
}

TEST(StackSimProperty, MatchesSetAssocOnRandomStreams) {
  // N random streams, alternating skewed and uniform, over the full
  // paper ladder at two block sizes.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const bool skewed = (seed % 2) == 0;
    const std::vector<Ref> refs = ref_stream(40000, seed * 7919u, skewed);
    cross_check(paper_ladder(64), refs,
                "seed " + std::to_string(seed) + (skewed ? " skewed" : " uniform"));
    cross_check(paper_ladder(8), refs,
                "seed " + std::to_string(seed) + " 8B blocks");
  }
}

TEST(StackSimProperty, MatchesSetAssocOnDegenerateGeometries) {
  // Single-set (fully associative) caches, assoc == num_blocks, and a
  // direct-mapped single-block extreme, mixed with ordinary geometries so
  // several mappings coexist in one group.
  const std::vector<CacheConfig> configs = {
      CacheConfig{512, 64, 8},    // 1 set of 8 (assoc == num_blocks)
      CacheConfig{1024, 64, 16},  // 1 set of 16
      CacheConfig{256, 64, 4},    // 1 set of 4
      CacheConfig{64, 64, 1},     // a single block
      CacheConfig{8192, 64, 2},   // ordinary geometry sharing the group
      CacheConfig{8192, 64, 1},
  };
  for (std::uint32_t seed : {3u, 11u}) {
    cross_check(configs, ref_stream(30000, seed, seed == 3u),
                "degenerate seed " + std::to_string(seed));
  }
}

TEST(StackSimProperty, MatchesSetAssocAcrossMixedBlockSizeGroups) {
  // One bank spanning several block sizes — the single-pass block-size
  // sweep configuration — must behave as independent per-size groups.
  std::vector<CacheConfig> configs;
  for (std::uint32_t block : {8u, 16u, 32u, 64u}) {
    const std::vector<CacheConfig> part = paper_ladder(block);
    configs.insert(configs.end(), part.begin(), part.end());
  }
  cross_check(configs, ref_stream(30000, 123u, true), "mixed block sizes");
}

TEST(StackSimProperty, ShardedSumsMatchSerial) {
  // Partitioning the sets across shards must change nothing: per-config
  // sums over shards equal the serial engine bit for bit.
  const std::vector<CacheConfig> configs = paper_ladder(64);
  const std::vector<Ref> refs = ref_stream(30000, 77u, true);
  StackSimBank serial(configs, 1);
  StackSimBank sharded(configs, 4);
  for (const Ref& r : refs) {
    if (r.is_fetch) {
      serial.on_fetch(r.addr);
      sharded.on_fetch(r.addr);
    } else {
      serial.on_data(r.addr, r.is_write);
      sharded.on_data(r.addr, r.is_write);
    }
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(configs[i].name());
    EXPECT_EQ(serial.istats(i).misses, sharded.istats(i).misses);
    EXPECT_EQ(serial.istats(i).accesses, sharded.istats(i).accesses);
    EXPECT_EQ(serial.dstats(i).misses, sharded.dstats(i).misses);
    EXPECT_EQ(serial.dstats(i).writebacks, sharded.dstats(i).writebacks);
  }
}

TEST(CacheProperty, FullyAssociativeLruSizesAreNested) {
  // With one set (fully associative), a bigger LRU cache's contents always
  // include the smaller's (stack inclusion), so misses are monotone.
  SetAssocCache c8(CacheConfig{512, 64, 8});    // 1 set of 8
  SetAssocCache c16(CacheConfig{1024, 64, 16});  // 1 set of 16
  ASSERT_EQ(c8.config().num_sets(), 1u);
  ASSERT_EQ(c16.config().num_sets(), 1u);
  for (auto [a, w] : lcg_stream(20000, 5, 0xFFF)) {
    c8.access(a, w);
    c16.access(a, w);
    if (c8.contains(a)) {
      EXPECT_TRUE(c16.contains(a));
    }
  }
  EXPECT_LE(c16.stats().misses, c8.stats().misses);
}

}  // namespace
}  // namespace jtam::cache
