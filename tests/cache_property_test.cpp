// Parameterized property tests of the cache simulator over block sizes,
// associativities and synthetic reference patterns.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cache/cache.h"

namespace jtam::cache {
namespace {

std::vector<std::pair<std::uint32_t, bool>> lcg_stream(int n,
                                                       std::uint32_t seed,
                                                       std::uint32_t mask) {
  std::vector<std::pair<std::uint32_t, bool>> out;
  std::uint32_t x = seed;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    out.emplace_back((x >> 7) & mask & ~3u, (x & 1) != 0);
  }
  return out;
}

using Geometry = std::tuple<std::uint32_t, std::uint32_t>;  // block, assoc

class CacheSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheSweep, MissesNeverExceedAccesses) {
  auto [block, assoc] = GetParam();
  SetAssocCache c(CacheConfig{8192, block, assoc});
  for (auto [a, w] : lcg_stream(20000, 7, 0xFFFF)) c.access(a, w);
  EXPECT_EQ(c.stats().accesses, 20000u);
  EXPECT_LE(c.stats().misses, c.stats().accesses);
  EXPECT_LE(c.stats().writebacks, c.stats().misses);
}

TEST_P(CacheSweep, SequentialScanMissesOncePerBlock) {
  auto [block, assoc] = GetParam();
  SetAssocCache c(CacheConfig{8192, block, assoc});
  const std::uint32_t words = 8192 / 4;  // exactly one cache of data
  for (std::uint32_t i = 0; i < words; ++i) c.read(i * 4);
  EXPECT_EQ(c.stats().misses, 8192u / block);
}

TEST_P(CacheSweep, WorkingSetWithinCapacityHitsAfterWarmup) {
  auto [block, assoc] = GetParam();
  SetAssocCache c(CacheConfig{8192, block, assoc});
  // A 2 KB working set scanned repeatedly fits every geometry.
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint32_t a = 0; a < 2048; a += 4) c.read(a);
  }
  EXPECT_EQ(c.stats().misses, 2048u / block);  // compulsory only
}

TEST_P(CacheSweep, DoublingAssociativityNeverAddsMisses) {
  auto [block, assoc] = GetParam();
  // Same number of sets; LRU stack property per set.
  SetAssocCache small(CacheConfig{4096, block, assoc});
  SetAssocCache big(CacheConfig{8192, block, assoc * 2});
  ASSERT_EQ(small.config().num_sets(), big.config().num_sets());
  for (auto [a, w] : lcg_stream(30000, 99, 0x7FFF)) {
    small.access(a, w);
    big.access(a, w);
  }
  EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Combine(::testing::Values(8u, 16u, 32u, 64u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

class PenaltyMonotonic
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PenaltyMonotonic, LargerCachesNeverifyFewerWritebacksThanMisses) {
  SetAssocCache c(CacheConfig{GetParam(), 64, 2});
  for (auto [a, w] : lcg_stream(50000, 3, 0x3FFFF)) c.access(a, w);
  EXPECT_LE(c.stats().writebacks, c.stats().misses);
  EXPECT_GT(c.stats().hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PenaltyMonotonic,
                         ::testing::ValuesIn(paper_cache_sizes()));

TEST(CacheProperty, FullyAssociativeLruSizesAreNested) {
  // With one set (fully associative), a bigger LRU cache's contents always
  // include the smaller's (stack inclusion), so misses are monotone.
  SetAssocCache c8(CacheConfig{512, 64, 8});    // 1 set of 8
  SetAssocCache c16(CacheConfig{1024, 64, 16});  // 1 set of 16
  ASSERT_EQ(c8.config().num_sets(), 1u);
  ASSERT_EQ(c16.config().num_sets(), 1u);
  for (auto [a, w] : lcg_stream(20000, 5, 0xFFF)) {
    c8.access(a, w);
    c16.access(a, w);
    if (c8.contains(a)) {
      EXPECT_TRUE(c16.contains(a));
    }
  }
  EXPECT_LE(c16.stats().misses, c8.stats().misses);
}

}  // namespace
}  // namespace jtam::cache
