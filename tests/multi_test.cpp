// Tests for multi-node execution: correctness on every workload and node
// count, address-space discipline, and parallelism shape invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "driver/experiment.h"
#include "mdp/multi.h"
#include "net/network.h"
#include "programs/registry.h"
#include "support/error.h"

namespace jtam {
namespace {

programs::Workload small_workload(const std::string& name) {
  if (name == "mmt") return programs::make_mmt(6);
  if (name == "qs") return programs::make_quicksort(24);
  if (name == "dtw") return programs::make_dtw(7);
  if (name == "paraffins") return programs::make_paraffins(8);
  if (name == "wavefront") return programs::make_wavefront(8, 2);
  return programs::make_selection_sort(16);
}

using MultiCombo =
    std::tuple<const char*, rt::BackendKind, int, net::NetKind>;

class MultiNode : public ::testing::TestWithParam<MultiCombo> {};

TEST_P(MultiNode, OraclePasses) {
  const std::string name = std::get<0>(GetParam());
  driver::RunOptions opts;
  opts.backend = std::get<1>(GetParam());
  driver::MultiOptions mopts;
  mopts.num_nodes = std::get<2>(GetParam());
  mopts.net = std::get<3>(GetParam());
  driver::MultiRunResult r =
      driver::run_workload_multi(small_workload(name), opts, mopts);
  EXPECT_TRUE(r.ok()) << name << ": " << r.check_error;
  EXPECT_EQ(static_cast<int>(r.per_node_instructions.size()),
            std::get<2>(GetParam()));
  if (mopts.net == net::NetKind::Mesh && r.messages > 0) {
    // Every delivered message records a hop count; a few sends may still
    // be in flight when the first HALT stops the ensemble.
    EXPECT_GT(r.hops.count(), 0u);
    EXPECT_LE(r.hops.count(), r.messages);
    EXPECT_GE(r.msg_latency.min(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MultiNode,
    ::testing::Combine(
        ::testing::Values("mmt", "qs", "dtw", "paraffins", "wavefront",
                          "ss"),
        ::testing::Values(rt::BackendKind::MessageDriven,
                          rt::BackendKind::ActiveMessages),
        ::testing::Values(2, 4),
        ::testing::Values(net::NetKind::Ideal, net::NetKind::Mesh)),
    [](const ::testing::TestParamInfo<MultiCombo>& info) {
      std::string s = std::get<0>(info.param);
      s += std::get<1>(info.param) == rt::BackendKind::MessageDriven
               ? "_MD"
               : "_AM";
      s += "_n" + std::to_string(std::get<2>(info.param));
      s += std::get<3>(info.param) == net::NetKind::Ideal ? "_ideal"
                                                          : "_mesh";
      return s;
    });

TEST(MultiNodeShape, ParallelWorkloadsSpeedUp) {
  // mmt's rows are independent: more nodes -> fewer parallel rounds.
  programs::Workload w = programs::make_mmt(8);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiRunResult n1 = driver::run_workload_multi(w, opts, 1);
  driver::MultiRunResult n4 = driver::run_workload_multi(w, opts, 4);
  ASSERT_TRUE(n1.ok() && n4.ok());
  EXPECT_LT(n4.rounds, n1.rounds * 3 / 4);
  EXPECT_GT(n4.messages, 0u);
  EXPECT_EQ(n1.messages, 0u);  // one node: everything is local
}

TEST(MultiNodeShape, SequentialWorkloadsDoNot) {
  // Selection sort is one frame on node 0: no distribution, no messages.
  programs::Workload w = programs::make_selection_sort(12);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiRunResult n1 = driver::run_workload_multi(w, opts, 1);
  driver::MultiRunResult n4 = driver::run_workload_multi(w, opts, 4);
  ASSERT_TRUE(n1.ok() && n4.ok());
  EXPECT_EQ(n4.messages, 0u);
  EXPECT_EQ(n4.rounds, n1.rounds);
}

TEST(MultiNodeShape, WorkDistributesAcrossNodes) {
  programs::Workload w = programs::make_mmt(8);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiRunResult r = driver::run_workload_multi(w, opts, 4);
  ASSERT_TRUE(r.ok());
  int busy = 0;
  for (std::uint64_t instr : r.per_node_instructions) {
    if (instr > r.total_instructions / 16) ++busy;
  }
  EXPECT_GE(busy, 3) << "row frames should spread round-robin";
}

TEST(MultiNodeShape, LatencyCostsRounds) {
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiRunResult fast =
      driver::run_workload_multi(w, opts, 4, /*latency=*/2);
  driver::MultiRunResult slow =
      driver::run_workload_multi(w, opts, 4, /*latency=*/200);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_LT(fast.rounds, slow.rounds);
}

TEST(MultiNodeMachine, RemoteDereferenceFaults) {
  // A node must never dereference another node's user data directly.
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  a.movi(mdp::R0,
         static_cast<std::int32_t>((2u << 24) | mem::kUserDataBase));
  a.ld(mdp::R1, mdp::R0, 0);
  a.halt(mdp::R1);
  mdp::CodeImage img = a.link();
  mdp::Machine::Config mc;
  mc.node_id = 0;
  mc.num_nodes = 4;
  mdp::Machine m(img, mc);
  std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(mdp::Priority::Low, boot);
  EXPECT_THROW(m.run(), Error);
}

TEST(MultiNodeMachine, SendRoutesThroughTheNetwork) {
  struct Recorder final : mdp::NetworkPort {
    int src = -1;
    int dest = -1;
    std::vector<std::uint32_t> words;
    void send(int s, int d, mdp::Priority, std::span<const std::uint32_t> w,
              std::uint64_t) override {
      src = s;
      dest = d;
      words.assign(w.begin(), w.end());
    }
  };
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  a.movi(mdp::R1, 3);
  a.sendl();
  a.sendd(mdp::R1);
  a.sendwi(0x1234);
  a.sende();
  a.movi(mdp::R0, 0);
  a.halt(mdp::R0);
  mdp::CodeImage img = a.link();
  mdp::Machine::Config mc;
  mc.num_nodes = 4;
  mdp::Machine m(img, mc);
  Recorder rec;
  m.set_network(&rec);
  std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(mdp::Priority::Low, boot);
  ASSERT_EQ(m.run(), mdp::RunStatus::Halted);
  EXPECT_EQ(rec.dest, 3);
  ASSERT_EQ(rec.words.size(), 1u);
  EXPECT_EQ(rec.words[0], 0x1234u);
}

TEST(MultiNodeMachine, SendDrRoundRobins) {
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  for (int i = 0; i < 3; ++i) {
    a.sendl();
    a.senddr();
    a.sendwi(i);
    a.sende();
  }
  a.movi(mdp::R0, 0);
  a.halt(mdp::R0);
  mdp::CodeImage img = a.link();
  mdp::Machine::Config mc;
  mc.node_id = 1;
  mc.num_nodes = 3;
  mdp::Machine m(img, mc);
  struct Recorder final : mdp::NetworkPort {
    std::vector<int> dests;
    void send(int, int d, mdp::Priority, std::span<const std::uint32_t>,
              std::uint64_t) override {
      dests.push_back(d);
    }
  } rec;
  m.set_network(&rec);
  std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(mdp::Priority::Low, boot);
  ASSERT_EQ(m.run(), mdp::RunStatus::Halted);
  // Node 1 starts its round-robin at itself (1): 1 is local, 2 and 0 are
  // remote — so the network saw [2, 0].
  ASSERT_EQ(rec.dests.size(), 2u);
  EXPECT_EQ(rec.dests[0], 2);
  EXPECT_EQ(rec.dests[1], 0);
}

}  // namespace
}  // namespace jtam
