// Unit tests for the assembler, linker and disassembler.

#include <gtest/gtest.h>

#include "mdp/assembler.h"
#include "mdp/disasm.h"
#include "support/error.h"

namespace jtam::mdp {
namespace {

TEST(Assembler, SectionsHaveIndependentCursors) {
  Assembler a;
  a.section(Section::SysCode);
  EXPECT_EQ(a.cursor(), mem::kSysCodeBase);
  a.nop();
  EXPECT_EQ(a.cursor(), mem::kSysCodeBase + 4);
  a.section(Section::UserCode);
  EXPECT_EQ(a.cursor(), mem::kUserCodeBase);
  a.nop();
  a.section(Section::SysCode);
  EXPECT_EQ(a.cursor(), mem::kSysCodeBase + 4);
}

TEST(Assembler, ForwardLabelFixup) {
  Assembler a;
  a.section(Section::SysCode);
  LabelRef fwd = a.label("target");
  a.br(fwd);
  a.nop();
  a.bind(fwd);
  a.halt(R0);
  CodeImage img = a.link();
  EXPECT_EQ(static_cast<mem::Addr>(img.sys_code[0].imm),
            img.symbol("target"));
  EXPECT_EQ(img.symbol("target"), mem::kSysCodeBase + 8);
}

TEST(Assembler, CrossSectionReference) {
  Assembler a;
  a.section(Section::SysCode);
  LabelRef user_fn = a.label("user_fn");
  a.movi(R0, user_fn);
  a.halt(R0);
  a.section(Section::UserCode);
  a.bind(user_fn);
  a.ret();
  CodeImage img = a.link();
  EXPECT_EQ(static_cast<mem::Addr>(img.sys_code[0].imm), mem::kUserCodeBase);
}

TEST(Assembler, UnboundLabelFailsLink) {
  Assembler a;
  a.section(Section::SysCode);
  LabelRef dangling = a.label("dangling");
  a.br(dangling);
  EXPECT_THROW(a.link(), Error);
}

TEST(Assembler, DoubleBindFails) {
  Assembler a;
  LabelRef l = a.label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), Error);
}

TEST(Assembler, DuplicateSymbolFailsLink) {
  Assembler a;
  a.here("same");
  a.nop();
  a.here("same");
  a.nop();
  EXPECT_THROW(a.link(), Error);
}

TEST(Assembler, AnonymousLabelsDoNotPolluteSymbols) {
  Assembler a;
  a.section(Section::SysCode);
  LabelRef anon = a.here();
  a.br(anon);
  CodeImage img = a.link();
  EXPECT_TRUE(img.symbols.empty());
}

TEST(Assembler, SymbolLookupUnknownThrows) {
  Assembler a;
  CodeImage img = a.link();
  EXPECT_THROW(img.symbol("nope"), Error);
}

TEST(Disasm, RendersRepresentativeOpcodes) {
  EXPECT_EQ(disasm(Instr{Op::Add, R1, R2, R3}), "add r1, r2, r3");
  EXPECT_EQ(disasm(Instr{Op::Movi, R0, 0, 0, 42}), "movi r0, 42");
  Instr ld{Op::Ld, R2, R6, 0, 0};
  ld.off = 12;
  EXPECT_EQ(disasm(ld), "ld r2, [r6+12]");
  Instr st{Op::St, 0, R6, R1, 0};
  st.off = 8;
  EXPECT_EQ(disasm(st), "st [r6+8], r1");
  EXPECT_EQ(disasm(Instr{Op::Suspend}), "suspend");
  Instr cmt{Op::Nop};
  cmt.comment = "hello";
  EXPECT_EQ(disasm(cmt), "nop  ; hello");
}

TEST(Disasm, FullImageIncludesSymbols) {
  Assembler a;
  a.section(Section::SysCode);
  a.here("entry");
  a.nop();
  a.halt(R0);
  std::string text = disasm(a.link());
  EXPECT_NE(text.find("entry:"), std::string::npos);
  EXPECT_NE(text.find("nop"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace jtam::mdp
