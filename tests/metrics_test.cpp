// Unit tests for the granularity/access metrics and the cycle model.

#include <gtest/gtest.h>

#include <array>

#include "metrics/cycles.h"
#include "metrics/granularity.h"
#include "support/error.h"

namespace jtam::metrics {
namespace {

using mdp::MarkKind;
using mdp::Priority;

TEST(Cycles, TotalCyclesFormula) {
  cache::CacheStats icache;
  icache.accesses = 100;
  icache.misses = 10;
  cache::CacheStats dcache;
  dcache.accesses = 50;
  dcache.misses = 5;
  // §3.3: instructions take one cycle plus penalty per miss.
  EXPECT_EQ(total_cycles(1000, icache, dcache, 12), 1000u + 12u * 15u);
  EXPECT_EQ(total_cycles(1000, icache, dcache, 48), 1000u + 48u * 15u);
}

TEST(Cycles, GeomeanBasics) {
  std::array<double, 3> v{1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(geomean(v), 4.0);
  std::array<double, 1> one{7.5};
  EXPECT_DOUBLE_EQ(geomean(one), 7.5);
}

TEST(Cycles, GeomeanRejectsEmptyAndNonPositive) {
  EXPECT_THROW(geomean({}), Error);
  std::array<double, 2> bad{1.0, 0.0};
  EXPECT_THROW(geomean(bad), Error);
}

TEST(StatsSink, CountsByLevelAndRegion) {
  StatsSink s(rt::BackendKind::MessageDriven, nullptr);
  s.on_fetch(mem::kSysCodeBase, Priority::Low);
  s.on_fetch(mem::kUserCodeBase, Priority::High);
  s.on_read(mem::kLowQueueBase, Priority::Low);
  s.on_write(mem::kUserDataBase, Priority::High);
  const AccessCounts& c = s.counts();
  EXPECT_EQ(c.total_fetches(), 2u);
  EXPECT_EQ(c.fetches_in(0), 1u);  // sys code
  EXPECT_EQ(c.fetches_in(1), 1u);  // user code
  EXPECT_EQ(c.reads_in(2), 1u);    // sys data (queue)
  EXPECT_EQ(c.writes_in(3), 1u);   // user data
}

TEST(StatsSink, MdQuantaDelimitedByFrameChanges) {
  StatsSink s(rt::BackendKind::MessageDriven, nullptr);
  // inlet(frame A) -> thread(A) -> thread(A) | inlet(B) -> thread(B) |
  // inlet(A) again.
  s.on_mark(MarkKind::InletStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::InletStart, 0xB0, Priority::Low);
  s.on_mark(MarkKind::ThreadStart, 0xB0, Priority::Low);
  s.on_mark(MarkKind::InletStart, 0xA0, Priority::Low);
  const Granularity& g = s.granularity();
  EXPECT_EQ(g.quanta, 3u);
  EXPECT_EQ(g.threads, 3u);
  EXPECT_EQ(g.inlets, 3u);
  EXPECT_DOUBLE_EQ(g.tpq(), 1.0);
}

TEST(StatsSink, AmHighPriorityInletsDoNotBreakQuanta) {
  StatsSink s(rt::BackendKind::ActiveMessages, nullptr);
  s.on_mark(MarkKind::Activate, 0xA0, Priority::Low);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  // A high-priority inlet for a DIFFERENT frame interrupts...
  s.on_mark(MarkKind::InletStart, 0xB0, Priority::High);
  // ...but the quantum continues when the thread stream resumes.
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  const Granularity& g = s.granularity();
  EXPECT_EQ(g.quanta, 1u);
  EXPECT_EQ(g.threads, 3u);
  EXPECT_EQ(g.activations, 1u);
  EXPECT_DOUBLE_EQ(g.tpq(), 3.0);
}

TEST(StatsSink, ConsecutiveSameFrameActivationsShareAQuantum) {
  // §3.2: "this can involve emptying the LCV multiple times if subsequent
  // messages are destined for the same frame."
  StatsSink s(rt::BackendKind::ActiveMessages, nullptr);
  s.on_mark(MarkKind::Activate, 0xA0, Priority::Low);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::Activate, 0xA0, Priority::Low);  // re-activated
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::Activate, 0xB0, Priority::Low);  // frame switch
  s.on_mark(MarkKind::ThreadStart, 0xB0, Priority::Low);
  const Granularity& g = s.granularity();
  EXPECT_EQ(g.quanta, 2u);
  EXPECT_EQ(g.activations, 3u);
}

TEST(StatsSink, InstructionAttributionFollowsContext) {
  StatsSink s(rt::BackendKind::MessageDriven, nullptr);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_fetch(mem::kUserCodeBase, Priority::Low);
  s.on_fetch(mem::kUserCodeBase + 4, Priority::Low);
  s.on_mark(MarkKind::SysStart, 0, Priority::Low);
  s.on_fetch(mem::kSysCodeBase, Priority::Low);
  s.on_mark(MarkKind::SysStart, 0, Priority::High);
  s.on_fetch(mem::kSysCodeBase + 4, Priority::High);
  const Granularity& g = s.granularity();
  EXPECT_EQ(g.thread_instrs, 2u);
  EXPECT_EQ(g.sched_instrs, 1u);
  EXPECT_EQ(g.handler_instrs, 1u);
  EXPECT_EQ(g.quantum_instrs, 2u);
  EXPECT_DOUBLE_EQ(g.ipt(), 2.0);
}

TEST(StatsSink, FpCallsCountWithoutSwitchingContext) {
  StatsSink s(rt::BackendKind::MessageDriven, nullptr);
  s.on_mark(MarkKind::ThreadStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::FpCall, 0, Priority::Low);
  s.on_fetch(mem::kSysCodeBase, Priority::Low);  // inside the FP library
  const Granularity& g = s.granularity();
  EXPECT_EQ(g.fp_calls, 1u);
  EXPECT_EQ(g.thread_instrs, 1u);  // attributed to the calling thread
}

TEST(StatsSink, ForwardsToCacheBank) {
  cache::CacheBank bank({cache::CacheConfig{1024, 64, 1}});
  StatsSink s(rt::BackendKind::MessageDriven, &bank);
  s.on_fetch(mem::kSysCodeBase, Priority::Low);
  s.on_read(mem::kUserDataBase, Priority::Low);
  s.on_write(mem::kUserDataBase + 64, Priority::Low);
  EXPECT_EQ(bank.at(0).icache.stats().accesses, 1u);
  EXPECT_EQ(bank.at(0).dcache.stats().accesses, 2u);
}

TEST(Granularity, RatiosHandleZeroDenominators) {
  Granularity g;
  EXPECT_DOUBLE_EQ(g.tpq(), 0.0);
  EXPECT_DOUBLE_EQ(g.ipt(), 0.0);
  EXPECT_DOUBLE_EQ(g.ipq(), 0.0);

  // Each ratio guards its own denominator: zero quanta with live threads
  // (and vice versa) must not divide by zero — and the non-degenerate
  // ratio still computes.
  Granularity threads_only;
  threads_only.threads = 4;
  threads_only.thread_instrs = 40;
  EXPECT_DOUBLE_EQ(threads_only.tpq(), 0.0);
  EXPECT_DOUBLE_EQ(threads_only.ipq(), 0.0);
  EXPECT_DOUBLE_EQ(threads_only.ipt(), 10.0);

  Granularity quanta_only;
  quanta_only.quanta = 2;
  quanta_only.quantum_instrs = 30;
  EXPECT_DOUBLE_EQ(quanta_only.ipt(), 0.0);
  EXPECT_DOUBLE_EQ(quanta_only.tpq(), 0.0);
  EXPECT_DOUBLE_EQ(quanta_only.ipq(), 15.0);
}

TEST(StatsSink, QueueSampleMarksChangeNothing) {
  // The machine-emitted Dispatch/Suspend marks are observability-only:
  // no context change, no counter.  An instruction after them attributes
  // exactly as it would have without them.
  StatsSink s(rt::BackendKind::MessageDriven, nullptr);
  s.on_mark(MarkKind::InletStart, 0xA0, Priority::Low);
  s.on_mark(MarkKind::Dispatch, mdp::pack_queue_sample(64, 2),
            Priority::Low);
  s.on_fetch(mem::kUserCodeBase, Priority::Low);  // still inlet context
  s.on_mark(MarkKind::Suspend, mdp::pack_queue_sample(0, 0), Priority::Low);
  s.on_fetch(mem::kUserCodeBase + 4, Priority::Low);
  const Granularity& g = s.granularity();
  EXPECT_EQ(g.inlets, 1u);
  EXPECT_EQ(g.inlet_instrs, 2u);
  EXPECT_EQ(g.sched_instrs, 0u);
  EXPECT_EQ(g.threads, 0u);
}

}  // namespace
}  // namespace jtam::metrics
