// Tests for the Hybrid (Optimistic Active Messages-style) back-end and its
// handler-safety analysis.

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "programs/registry.h"
#include "support/error.h"
#include "tamc/lower.h"
#include "tamc/mdopt.h"

namespace jtam {
namespace {

using tam::BodyBuilder;
using tam::CodeblockBuilder;
using tam::InletId;
using tam::Program;
using tam::ThreadId;
using tam::VReg;

TEST(HybridAnalysis, ChainOfTailForksQualifies) {
  Program p;
  p.name = "chain";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t1 = cb.declare_thread("t1");
  ThreadId t2 = cb.declare_thread("t2");
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t1);
  }
  {
    BodyBuilder b = cb.define_thread(t1);
    b.forks({t2});  // single tail fork: no LCV push
  }
  {
    BodyBuilder b = cb.define_thread(t2);
    VReg v = b.frame_load(0);
    b.send_halt(v);
    b.stop();
  }
  cb.finish();
  auto q = tamc::analyze_hybrid_runnable(p);
  EXPECT_TRUE(q[0][t1]);
  EXPECT_TRUE(q[0][t2]);
}

TEST(HybridAnalysis, LcvPushDisqualifiesTheChain) {
  Program p;
  p.name = "pushes";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t1 = cb.declare_thread("t1");
  ThreadId t2 = cb.declare_thread("t2");
  ThreadId t3 = cb.declare_thread("t3");
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t1);
  }
  {
    // Two forks: the first is an LCV push -> t1 cannot run in a handler,
    // and because t1 would then run at low priority, both of its targets
    // are dragged down with it.
    BodyBuilder b = cb.define_thread(t1);
    b.forks({t2, t3});
  }
  {
    BodyBuilder b = cb.define_thread(t2);
    b.stop();
  }
  {
    BodyBuilder b = cb.define_thread(t3);
    VReg v = b.frame_load(0);
    b.send_halt(v);
    b.stop();
  }
  cb.finish();
  auto q = tamc::analyze_hybrid_runnable(p);
  EXPECT_FALSE(q[0][t1]);
  EXPECT_FALSE(q[0][t2]);
  EXPECT_FALSE(q[0][t3]);
}

TEST(HybridAnalysis, DisqualificationPropagatesUpTailChains) {
  Program p;
  p.name = "prop";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t1 = cb.declare_thread("t1");
  ThreadId t2 = cb.declare_thread("t2");
  ThreadId t3 = cb.declare_thread("t3");
  ThreadId t4 = cb.declare_thread("t4");
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t1);
  }
  {
    BodyBuilder b = cb.define_thread(t1);
    b.forks({t2});
  }
  {
    BodyBuilder b = cb.define_thread(t2);
    b.forks({t3, t4});  // push here
  }
  {
    BodyBuilder b = cb.define_thread(t3);
    b.stop();
  }
  {
    BodyBuilder b = cb.define_thread(t4);
    VReg v = b.frame_load(0);
    b.send_halt(v);
    b.stop();
  }
  cb.finish();
  auto q = tamc::analyze_hybrid_runnable(p);
  // t2 pushes; t1 tail-branches into t2 so it is dragged out too.
  EXPECT_FALSE(q[0][t2]);
  EXPECT_FALSE(q[0][t1]);
}

class HybridWorkload : public ::testing::TestWithParam<const char*> {};

TEST_P(HybridWorkload, OraclePassesAndCostSitsBetweenPureSystems) {
  const std::string name = GetParam();
  programs::Workload w = [&] {
    if (name == "mmt") return programs::make_mmt(6);
    if (name == "qs") return programs::make_quicksort(24);
    if (name == "dtw") return programs::make_dtw(7);
    if (name == "paraffins") return programs::make_paraffins(8);
    if (name == "wavefront") return programs::make_wavefront(8, 2);
    return programs::make_selection_sort(16);
  }();
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.backend = rt::BackendKind::Hybrid;
  driver::RunResult oam = driver::run_workload(w, opts);
  EXPECT_TRUE(oam.ok()) << oam.check_error;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::RunResult md = driver::run_workload(w, opts);
  opts.backend = rt::BackendKind::ActiveMessages;
  driver::RunResult am = driver::run_workload(w, opts);
  // The hybrid never costs more than pure AM (it only ever removes
  // scheduling work); it can even undercut pure MD, because handler-safe
  // chains end in a one-instruction SUSPEND where MD pays the LCV pop and
  // stop-stub reset.  Allow slack for halt-truncation noise.
  EXPECT_LE(oam.instructions, am.instructions * 101 / 100) << name;
  EXPECT_GE(oam.instructions, md.instructions * 80 / 100) << name;
  (void)md;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, HybridWorkload,
                         ::testing::Values("mmt", "qs", "dtw", "paraffins",
                                           "wavefront", "ss"));

TEST(Hybrid, EnabledVariantIsRejected) {
  programs::Workload w = programs::make_selection_sort(8);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::Hybrid;
  opts.am_enabled_variant = true;
  EXPECT_THROW(driver::run_workload(w, opts), Error);
}

}  // namespace
}  // namespace jtam
