// Unit tests for the runtime kernel handlers, exercised in isolation on a
// bare machine: frame allocation/free/reuse, heap allocation, I-structure
// fetch/store with deferral, imperative globals, and the FP library.

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include <functional>

#include "mdp/assembler.h"
#include "mdp/machine.h"
#include "runtime/kernel.h"
#include "runtime/layout.h"
#include "support/error.h"

namespace jtam::rt {
namespace {

using namespace mdp;  // NOLINT(build/namespaces)
using mem::Addr;

constexpr Addr kHeapBase = mem::kUserDataBase + 0x100000;
constexpr Addr kScratch = mem::kUserDataBase + 0x1000;

/// Kernel + a user "probe" handler under test-controlled assembly.
struct KernelBed {
  CodeImage image;
  KernelRefs refs_snapshot;  // label values are resolved through symbols

  explicit KernelBed(BackendKind backend,
                     const std::function<void(Assembler&, KernelRefs&)>&
                         emit_user = {}) {
    Assembler a;
    a.section(Section::SysCode);
    KernelRefs refs = emit_kernel(a, {backend});
    if (emit_user) {
      a.section(Section::UserCode);
      emit_user(a, refs);
    }
    image = a.link();
    refs_snapshot = refs;
  }

  Machine make_machine() const {
    Machine m(image);
    m.set_defer_pool(mem::kUserDataBase + 0x200000,
                     mem::kUserDataBase + 0x300000);
    m.store_word(kGlHeapBump, kHeapBase);
    m.store_word(kGlLcvTop, kLcvEmptyTop);
    for (int cb = 0; cb < kMaxCodeblocks; ++cb) {
      m.store_word(kGlFreeHeads + static_cast<Addr>(4 * cb), 0);
    }
    return m;
  }
};

/// Write a codeblock descriptor for tests.
void write_desc(Machine& m, int cb, std::uint32_t frame_bytes,
                std::uint32_t ec_off, std::vector<std::uint32_t> ec_init) {
  const Addr desc = mem::kSysTableBase + static_cast<Addr>(cb) * kCbDescBytes;
  const Addr tmpl = mem::kSysTableBase + 0x800 + static_cast<Addr>(cb) * 64;
  m.store_word(desc + 0, frame_bytes);
  m.store_word(desc + 4, ec_off);
  m.store_word(desc + 8, static_cast<std::uint32_t>(ec_init.size()));
  m.store_word(desc + 12, tmpl);
  for (std::size_t e = 0; e < ec_init.size(); ++e) {
    m.store_word(tmpl + static_cast<Addr>(4 * e), ec_init[e]);
  }
}

TEST(Kernel, HaltHandlerDeliversValue) {
  KernelBed bed(BackendKind::MessageDriven);
  Machine m = bed.make_machine();
  std::uint32_t msg[] = {bed.image.symbol("rt_halt"), 777};
  m.inject(Priority::High, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 777u);
}

TEST(Kernel, FallocBumpAllocatesAndInitializesEntryCounts) {
  // Reply inlet: captures the frame pointer and halts with it.
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8, "frame pointer payload");
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  write_desc(m, /*cb=*/3, /*frame_bytes=*/64, /*ec_off=*/16, {2, 5});
  std::uint32_t msg[] = {bed.image.symbol("rt_falloc"), 3,
                         bed.image.symbol("probe"), kScratch};
  m.inject(Priority::High, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  const Addr frame = m.halt_value();
  EXPECT_EQ(frame, kHeapBase);
  EXPECT_EQ(m.load_word(frame + 16), 2u);
  EXPECT_EQ(m.load_word(frame + 20), 5u);
  EXPECT_EQ(m.load_word(frame + kFrameLinkOff), 0u);
  EXPECT_EQ(m.load_word(kGlHeapBump), kHeapBase + 64);
}

TEST(Kernel, FallocAmZeroesTheRcvHeader) {
  KernelBed bed(BackendKind::ActiveMessages,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8);
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  write_desc(m, 0, 96, 32, {7});
  // Pre-dirty the RCV count location in fresh heap.
  m.store_word(kHeapBase + kAmRcvCntOff, 0xDEAD);
  std::uint32_t msg[] = {bed.image.symbol("rt_falloc"), 0,
                         bed.image.symbol("probe"), kScratch};
  m.inject(Priority::High, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.load_word(m.halt_value() + kAmRcvCntOff), 0u);
}

TEST(Kernel, FfreeThenFallocReusesTheFrame) {
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8);
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  write_desc(m, 1, 48, 8, {});
  const Addr recycled = kScratch + 0x400;
  std::uint32_t free_msg[] = {bed.image.symbol("rt_ffree"), 1, recycled};
  std::uint32_t alloc_msg[] = {bed.image.symbol("rt_falloc"), 1,
                               bed.image.symbol("probe"), kScratch};
  m.inject(Priority::High, free_msg);
  m.inject(Priority::High, alloc_msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), recycled);  // free-list hit, no bump
  EXPECT_EQ(m.load_word(kGlHeapBump), kHeapBase);
}

TEST(Kernel, HallocBumpsAndReplies) {
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8);
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  std::uint32_t msg[] = {bed.image.symbol("rt_halloc"), 256,
                         bed.image.symbol("probe"), kScratch};
  m.inject(Priority::High, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), kHeapBase);
  EXPECT_EQ(m.load_word(kGlHeapBump), kHeapBase + 256);
}

TEST(Kernel, IfetchPresentWordRepliesImmediately) {
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8, "value payload");
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  m.store_word(kScratch, 4242);
  m.set_tag(kScratch, true);
  std::uint32_t msg[] = {bed.image.symbol("rt_ifetch"), kScratch,
                         bed.image.symbol("probe"), 0x500000};
  m.inject(Priority::High, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 4242u);
}

TEST(Kernel, IfetchEmptyWordDefersUntilIstore) {
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8);
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  std::uint32_t fetch[] = {bed.image.symbol("rt_ifetch"), kScratch,
                           bed.image.symbol("probe"), 0x500000};
  std::uint32_t store[] = {bed.image.symbol("rt_istore"), kScratch, 99};
  m.inject(Priority::High, fetch);
  m.inject(Priority::High, store);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 99u);
  EXPECT_TRUE(m.tag(kScratch));
}

TEST(Kernel, IstoreWakesAllDeferredReaders) {
  // Two deferred fetches to different "frames"; istore must wake both.
  // The second reply halts with both values combined through a global.
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  LabelRef fin = a.label();
                  a.here("probe1");
                  a.ldm(R0, 8);
                  a.stg(R0, static_cast<std::int32_t>(
                                mem::kOsGlobalsBase + 80));
                  a.suspend();
                  a.here("probe2");
                  a.bind(fin);
                  a.ldm(R0, 8);
                  a.ldg(R1, static_cast<std::int32_t>(
                                mem::kOsGlobalsBase + 80));
                  a.alu(Op::Add, R0, R0, R1);
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  std::uint32_t f1[] = {bed.image.symbol("rt_ifetch"), kScratch,
                        bed.image.symbol("probe2"), 0x500000};
  std::uint32_t f2[] = {bed.image.symbol("rt_ifetch"), kScratch,
                        bed.image.symbol("probe1"), 0x500000};
  std::uint32_t store[] = {bed.image.symbol("rt_istore"), kScratch, 21};
  m.inject(Priority::High, f1);
  m.inject(Priority::High, f2);
  m.inject(Priority::High, store);
  // Wake order is LIFO (probe1 deferred last, so its reply is sent first
  // ... actually the detached list is walked most-recent first): probe1's
  // reply arrives before probe2's, so probe2 (fin) sees the stored global.
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 42u);
}

TEST(Kernel, GfetchAndGstoreAreImperative) {
  KernelBed bed(BackendKind::MessageDriven,
                [](Assembler& a, KernelRefs&) {
                  a.here("probe");
                  a.ldm(R0, 8);
                  a.halt(R0);
                });
  Machine m = bed.make_machine();
  std::uint32_t st1[] = {bed.image.symbol("rt_gstore"), kScratch, 10};
  std::uint32_t st2[] = {bed.image.symbol("rt_gstore"), kScratch, 20};
  std::uint32_t ld[] = {bed.image.symbol("rt_gfetch"), kScratch,
                        bed.image.symbol("probe"), 0x500000};
  m.inject(Priority::High, st1);
  m.inject(Priority::High, st2);  // overwrite: last value wins (FIFO)
  m.inject(Priority::High, ld);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 20u);
}

// --- FP library -------------------------------------------------------------

class FpLibTest : public ::testing::TestWithParam<
                      std::tuple<const char*, float, float, float>> {};

TEST_P(FpLibTest, ComputesExactIeeeResult) {
  auto [routine, x, y, want] = GetParam();
  Assembler a;
  a.section(Section::SysCode);
  KernelRefs refs = emit_kernel(a, {BackendKind::MessageDriven});
  a.section(Section::UserCode);
  a.here("probe");
  a.ldm(R0, 4);
  a.ldm(R1, 8);
  std::string name = routine;
  if (name == "fp_add") a.call(refs.fp_add);
  if (name == "fp_sub") a.call(refs.fp_sub);
  if (name == "fp_mul") a.call(refs.fp_mul);
  if (name == "fp_div") a.call(refs.fp_div);
  if (name == "fp_lt") a.call(refs.fp_lt);
  a.halt(R0);
  CodeImage img = a.link();
  Machine m(img);
  std::uint32_t msg[] = {img.symbol("probe"), std::bit_cast<std::uint32_t>(x),
                         std::bit_cast<std::uint32_t>(y)};
  m.inject(Priority::Low, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  if (name == "fp_lt") {
    EXPECT_EQ(m.halt_value(), want != 0.0f ? 1u : 0u);
  } else {
    EXPECT_EQ(std::bit_cast<float>(m.halt_value()), want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, FpLibTest,
    ::testing::Values(
        std::make_tuple("fp_add", 1.5f, 2.25f, 3.75f),
        std::make_tuple("fp_add", -1.0f, 1.0f, 0.0f),
        std::make_tuple("fp_add", 1e10f, 1.0f, 1e10f + 1.0f),
        std::make_tuple("fp_sub", 5.0f, 7.5f, -2.5f),
        std::make_tuple("fp_mul", 3.0f, -0.5f, -1.5f),
        std::make_tuple("fp_mul", 0.0f, 123.f, 0.0f),
        std::make_tuple("fp_div", 7.0f, 2.0f, 3.5f),
        std::make_tuple("fp_div", 1.0f, 3.0f, 1.0f / 3.0f),
        std::make_tuple("fp_lt", 1.0f, 2.0f, 1.0f),
        std::make_tuple("fp_lt", 2.0f, 1.0f, 0.0f),
        std::make_tuple("fp_lt", -1.0f, 1.0f, 1.0f)));

TEST(Kernel, InletQueueSelection) {
  EXPECT_EQ(inlet_queue(BackendKind::ActiveMessages), Priority::High);
  EXPECT_EQ(inlet_queue(BackendKind::MessageDriven), Priority::Low);
}

TEST(Kernel, BackendSpecificSymbolsExist) {
  {
    Assembler a;
    a.section(Section::SysCode);
    emit_kernel(a, {BackendKind::ActiveMessages});
    CodeImage img = a.link();
    EXPECT_NO_THROW(img.symbol("am_swap"));
    EXPECT_NO_THROW(img.symbol("am_sched_entry"));
    EXPECT_NO_THROW(img.symbol("rt_post"));
    EXPECT_THROW(img.symbol("md_stub"), Error);
  }
  {
    Assembler a;
    a.section(Section::SysCode);
    emit_kernel(a, {BackendKind::MessageDriven});
    CodeImage img = a.link();
    EXPECT_NO_THROW(img.symbol("md_stub"));
    EXPECT_THROW(img.symbol("am_swap"), Error);
    EXPECT_THROW(img.symbol("rt_post"), Error);
  }
}

}  // namespace
}  // namespace jtam::rt
