// Tests for the host-time observatory (obs/host) and the online signal
// bus (obs/signals):
//
//   - the determinism contract: every measured field of a multi-node run
//     is bit-identical with both observation layers attached, across the
//     full workload x back-end x engine matrix;
//   - the tie-out contract: the final frame on each node's SignalBoard
//     equals the post-hoc Distributions replay of the same trace
//     (count/sum pairs), the live machine counters, and is itself
//     engine-independent;
//   - the coverage contract: HostReport phase totals account for >= 95%
//     of the measured engine wall clock (chained-lap construction);
//   - SignalBoard seqlock correctness under concurrent writer/reader
//     threads (the test ThreadSanitizer CI runs over this file);
//   - the live-query seam: MultiOptions::on_signals_ready hands a watcher
//     thread shared board access during the run;
//   - schema_version in the new JSON exporters, and the
//     ParallelStats summary()/operator== regression surface.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.h"
#include "obs/export.h"
#include "obs/host.h"
#include "obs/obs.h"
#include "obs/signals.h"
#include "programs/registry.h"
#include "support/json.h"

namespace jtam {
namespace {

programs::Workload small_workload(const std::string& name) {
  if (name == "mmt") return programs::make_mmt(6);
  if (name == "qs") return programs::make_quicksort(24);
  if (name == "dtw") return programs::make_dtw(7);
  if (name == "paraffins") return programs::make_paraffins(8);
  if (name == "wavefront") return programs::make_wavefront(8, 2);
  return programs::make_selection_sort(16);
}

/// Every measured field must agree exactly (ParallelStats, host report
/// and signal snapshot are execution/observation reports, excluded).
void expect_identical(const driver::MultiRunResult& a,
                      const driver::MultiRunResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.injection_stall_cycles, b.injection_stall_cycles);
  EXPECT_EQ(a.stalled_sends, b.stalled_sends);
  EXPECT_EQ(a.per_node_instructions, b.per_node_instructions);
  EXPECT_EQ(a.per_node_injection_stalls, b.per_node_injection_stalls);
  EXPECT_EQ(a.deadlock_report, b.deadlock_report);
  EXPECT_TRUE(a.net_stats == b.net_stats)
      << a.net_stats.summary() << "\n  vs\n" << b.net_stats.summary();
}

// ---------------------------------------------------------------------------
// Determinism contract: observation layers change no measured number

using ObsCombo = std::tuple<const char*, rt::BackendKind>;

class HostObsDeterminism : public ::testing::TestWithParam<ObsCombo> {};

TEST_P(HostObsDeterminism, LayersOnIsBitIdenticalAtEveryThreadCount) {
  const std::string name = std::get<0>(GetParam());
  driver::RunOptions opts;
  opts.backend = std::get<1>(GetParam());
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  const programs::Workload w = small_workload(name);

  mo.threads = 0;
  const driver::MultiRunResult plain = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(plain.ok()) << name << ": " << plain.check_error;

  for (unsigned threads : {0u, 2u, 4u}) {
    mo.threads = threads;
    mo.host_profile = true;
    mo.signals.enabled = true;
    mo.signals.publish_every = 64;
    const driver::MultiRunResult layered =
        driver::run_workload_multi(w, opts, mo);
    ASSERT_TRUE(layered.ok()) << name << " T=" << threads << ": "
                              << layered.check_error;
    expect_identical(plain, layered);
    ASSERT_NE(layered.host, nullptr);
    ASSERT_NE(layered.signals, nullptr);
    // The layers also never change what engine runs.
    EXPECT_EQ(layered.parallel.engaged, threads >= 1);
    EXPECT_EQ(layered.host->parallel, threads >= 1);
    mo.host_profile = false;
    mo.signals.enabled = false;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HostObsDeterminism,
    ::testing::Combine(
        ::testing::Values("mmt", "qs", "dtw", "paraffins", "wavefront", "ss"),
        ::testing::Values(rt::BackendKind::MessageDriven,
                          rt::BackendKind::ActiveMessages)),
    [](const ::testing::TestParamInfo<ObsCombo>& info) {
      std::string s = std::get<0>(info.param);
      s += std::get<1>(info.param) == rt::BackendKind::MessageDriven ? "_MD"
                                                                     : "_AM";
      return s;
    });

// ---------------------------------------------------------------------------
// Tie-out: final board frames == post-hoc Distributions == live counters

void expect_frame_ties_out(const obs::SignalSnapshot::Node& node) {
  const obs::SignalFrame& f = node.frame;
  const obs::Distributions& d = node.dist;
  EXPECT_EQ(f.quanta, d.quantum_len.count());
  EXPECT_EQ(f.quantum_instrs, d.quantum_len.sum());
  EXPECT_EQ(f.threads, d.ipt.count());
  EXPECT_EQ(f.thread_instrs, d.ipt.sum());
  EXPECT_EQ(f.inlets, d.inlet_len.count());
  EXPECT_EQ(f.inlet_instrs, d.inlet_len.sum());
  for (int l = 0; l < 2; ++l) {
    EXPECT_EQ(f.dispatches[l], d.queue_depth[l].count());
    EXPECT_EQ(f.queue_depth_sum[l], d.queue_depth[l].sum());
    EXPECT_EQ(f.queue_bytes_sum[l], d.queue_bytes[l].sum());
  }
}

TEST(SignalTieOut, FinalFrameEqualsPostHocDistributionsAndLiveCounters) {
  for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                  rt::BackendKind::ActiveMessages}) {
    driver::RunOptions opts;
    opts.backend = backend;
    driver::MultiOptions mo;
    mo.num_nodes = 4;
    mo.threads = 0;
    mo.signals.enabled = true;
    mo.signals.publish_every = 64;
    const programs::Workload w = small_workload("mmt");
    const driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
    ASSERT_TRUE(r.ok()) << r.check_error;
    ASSERT_NE(r.signals, nullptr);
    ASSERT_EQ(static_cast<int>(r.signals->nodes.size()), 4);
    std::uint64_t instr_total = 0;
    for (std::size_t n = 0; n < r.signals->nodes.size(); ++n) {
      const obs::SignalFrame& f = r.signals->nodes[n].frame;
      EXPECT_GE(f.seq, 1u);
      EXPECT_EQ(f.final_frame, 1u);
      EXPECT_EQ(f.round, r.rounds);
      // Board frame vs the machine's own counters.
      EXPECT_EQ(f.instructions, r.per_node_instructions[n]);
      EXPECT_EQ(f.send_stall_cycles, r.per_node_injection_stalls[n]);
      instr_total += f.instructions;
      // Board frame vs the post-hoc replay of the same trace.
      expect_frame_ties_out(r.signals->nodes[n]);
    }
    EXPECT_EQ(instr_total, r.total_instructions);
  }
}

TEST(SignalTieOut, CumulativeCountersAreEngineIndependent) {
  // The per-node trace stream has identical content under the serial loop
  // and the windowed engine, so the bus's cumulative counters must match
  // exactly — only publish cadence (seq) and thus EWMAs may differ.
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::ActiveMessages;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.signals.enabled = true;
  mo.signals.publish_every = 64;
  const programs::Workload w = small_workload("qs");
  mo.threads = 0;
  const driver::MultiRunResult serial = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(serial.ok()) << serial.check_error;
  mo.threads = 2;
  const driver::MultiRunResult par = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(par.ok()) << par.check_error;
  ASSERT_TRUE(par.parallel.engaged);
  ASSERT_NE(serial.signals, nullptr);
  ASSERT_NE(par.signals, nullptr);
  ASSERT_EQ(serial.signals->nodes.size(), par.signals->nodes.size());
  for (std::size_t n = 0; n < serial.signals->nodes.size(); ++n) {
    const obs::SignalFrame& a = serial.signals->nodes[n].frame;
    const obs::SignalFrame& b = par.signals->nodes[n].frame;
    EXPECT_EQ(a.quanta, b.quanta);
    EXPECT_EQ(a.quantum_instrs, b.quantum_instrs);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.thread_instrs, b.thread_instrs);
    EXPECT_EQ(a.inlets, b.inlets);
    EXPECT_EQ(a.inlet_instrs, b.inlet_instrs);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.send_stall_cycles, b.send_stall_cycles);
    for (int l = 0; l < 2; ++l) {
      EXPECT_EQ(a.dispatches[l], b.dispatches[l]);
      EXPECT_EQ(a.queue_depth_sum[l], b.queue_depth_sum[l]);
      EXPECT_EQ(a.queue_bytes_sum[l], b.queue_bytes_sum[l]);
    }
    EXPECT_EQ(a.num_codeblocks, b.num_codeblocks);
    for (std::uint32_t c = 0; c < a.num_codeblocks; ++c) {
      EXPECT_EQ(a.cb[c].instrs, b.cb[c].instrs);
      EXPECT_EQ(a.cb[c].runs, b.cb[c].runs);
    }
    // Both snapshots' post-hoc replays agree too.
    expect_frame_ties_out(serial.signals->nodes[n]);
    expect_frame_ties_out(par.signals->nodes[n]);
  }
}

// ---------------------------------------------------------------------------
// Host-report coverage and shape

TEST(HostReport, PhaseTotalsCoverTheEngineWallClock) {
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::ActiveMessages;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.host_profile = true;
  const programs::Workload w = small_workload("mmt");
  for (unsigned threads : {0u, 2u}) {
    mo.threads = threads;
    const driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
    ASSERT_TRUE(r.ok()) << r.check_error;
    ASSERT_NE(r.host, nullptr);
    const obs::HostReport& hr = *r.host;
    EXPECT_EQ(hr.rounds, r.rounds);
    ASSERT_GT(hr.engine_wall_ns, 0u);
    // The chained-lap design: phases partition the engine wall clock.
    EXPECT_GE(hr.coverage(), 0.95) << hr.phase_total_ns() << " of "
                                   << hr.engine_wall_ns;
    EXPECT_LE(hr.coverage(), 1.02);
    if (threads >= 1) {
      EXPECT_TRUE(hr.parallel);
      EXPECT_EQ(hr.shards, 2u);
      EXPECT_EQ(hr.windows, r.parallel.windows);
      EXPECT_EQ(hr.window_limit, r.parallel.window_limit);
      ASSERT_EQ(hr.shard_busy_ns.size(), 2u);
      EXPECT_GT(hr.shard_busy_ns[0], 0u);
      EXPECT_GE(hr.imbalance(), 1.0);
      EXPECT_FALSE(hr.sampled.empty());
      // Sampled windows carry per-window slices of the same phases.
      std::uint64_t windowed = 0;
      for (const obs::HostReport::WindowSample& ws : hr.sampled) {
        for (std::uint64_t ns : ws.phase_ns) windowed += ns;
      }
      EXPECT_LE(windowed, hr.phase_total_ns());
    } else {
      EXPECT_FALSE(hr.parallel);
      EXPECT_EQ(hr.shards, 1u);
      EXPECT_TRUE(hr.sampled.empty());
    }
  }
}

TEST(HostReport, WindowSamplingCapCountsDroppedWindows) {
  // Drive the profiler directly: three windows through a cap of two.
  obs::HostProfiler prof(2);
  prof.on_run_begin(true, 2, 16);
  const std::uint64_t busy[2] = {100, 200};
  prof.on_phase(mdp::EngineProfiler::Phase::Plan, 50);
  prof.on_window(0, 16, busy, 2);
  prof.on_phase(mdp::EngineProfiler::Phase::Plan, 70);
  prof.on_window(16, 16, busy, 2);
  prof.on_phase(mdp::EngineProfiler::Phase::Plan, 90);
  prof.on_window(32, 16, busy, 2);
  prof.on_run_end(48, 3);
  const obs::HostReport& hr = prof.report();
  EXPECT_EQ(hr.windows, 3u);
  ASSERT_EQ(hr.sampled.size(), 2u);
  EXPECT_EQ(hr.windows_dropped, 1u);
  // Per-window attribution is the delta since the previous window — the
  // dropped window must not bleed into a later sample.
  const int plan = static_cast<int>(mdp::EngineProfiler::Phase::Plan);
  EXPECT_EQ(hr.sampled[0].phase_ns[plan], 50u);
  EXPECT_EQ(hr.sampled[1].phase_ns[plan], 70u);
  // Whole-run shard busy accumulates across all three windows.
  ASSERT_EQ(hr.shard_busy_ns.size(), 2u);
  EXPECT_EQ(hr.shard_busy_ns[0], 300u);
  EXPECT_EQ(hr.shard_busy_ns[1], 600u);
  EXPECT_DOUBLE_EQ(hr.imbalance(), 600.0 / 450.0);
}

TEST(HostReport, SingleNodePipelinePathFillsStagesAndPool) {
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.with_cache = false;
  opts.obs.profile = true;
  opts.obs.histograms = true;
  opts.obs.host_profile = true;
  const driver::RunResult r =
      driver::run_workload(small_workload("mmt"), opts);
  ASSERT_TRUE(r.check_error.empty()) << r.check_error;
  ASSERT_NE(r.obs, nullptr);
  ASSERT_TRUE(r.obs->host.has_value());
  const obs::HostReport& hr = *r.obs->host;
  EXPECT_GT(hr.engine_wall_ns, 0u);
  ASSERT_FALSE(hr.stages.empty());
  bool saw_obs_stage = false;
  for (const obs::HostReport::Stage& s : hr.stages) {
    if (s.name.rfind("obs:", 0) == 0) saw_obs_stage = true;
    EXPECT_GT(s.blocks, 0u);
  }
  EXPECT_TRUE(saw_obs_stage);
}

// ---------------------------------------------------------------------------
// SignalBoard seqlock under contention (ThreadSanitizer target)

TEST(SignalBoard, ConcurrentReadersSeeOnlyConsistentFrames) {
  obs::SignalBoard board;
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kPublishes = 20000;

  // Every word of the frame is derived from seq, so any torn read fails
  // the relations below.
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> good_reads{0};
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      obs::SignalFrame f;
      while (!stop.load(std::memory_order_acquire)) {
        if (!board.read(f)) continue;
        ASSERT_GE(f.seq, 1u);
        ASSERT_LE(f.seq, kPublishes);
        ASSERT_EQ(f.round, f.seq * 7);
        ASSERT_EQ(f.quanta, f.seq * 3);
        ASSERT_EQ(f.instructions, f.seq * 11);
        ASSERT_EQ(f.cb[0].instrs, f.seq * 13);
        good_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t s = 1; s <= kPublishes; ++s) {
    obs::SignalFrame f;
    f.seq = s;
    f.round = s * 7;
    f.quanta = s * 3;
    f.instructions = s * 11;
    f.num_codeblocks = 1;
    f.cb[0].instrs = s * 13;
    board.publish(f);
  }
  // On a single-CPU host the publish loop may finish before the readers
  // ever run; keep the board live until both have seen a frame.
  while (good_reads.load(std::memory_order_relaxed) < 2) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  EXPECT_GT(good_reads.load(), 0u);
  obs::SignalFrame last;
  ASSERT_TRUE(board.read(last));
  EXPECT_EQ(last.seq, kPublishes);
}

TEST(SignalBoard, ReadBeforeFirstPublishReturnsFalse) {
  obs::SignalBoard board;
  obs::SignalFrame f;
  EXPECT_FALSE(board.read(f));
}

// ---------------------------------------------------------------------------
// The live-query seam: a watcher thread during a real run

TEST(SignalWatcher, OnSignalsReadyGrantsConcurrentBoardAccess) {
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::ActiveMessages;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.threads = 2;
  mo.signals.enabled = true;
  mo.signals.publish_every = 32;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> frames_seen{0};
  std::thread watcher;
  mo.on_signals_ready = [&](std::shared_ptr<const obs::SignalHub> hub) {
    watcher = std::thread([&done, &frames_seen, hub] {
      obs::SignalFrame f;
      while (!done.load(std::memory_order_acquire)) {
        for (int n = 0; n < hub->num_nodes(); ++n) {
          if (hub->board(n).read(f)) {
            frames_seen.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  };
  const driver::MultiRunResult r =
      driver::run_workload_multi(small_workload("mmt"), opts, mo);
  done.store(true, std::memory_order_release);
  ASSERT_TRUE(watcher.joinable());
  watcher.join();
  ASSERT_TRUE(r.ok()) << r.check_error;
  EXPECT_GT(frames_seen.load(), 0u);
}

// ---------------------------------------------------------------------------
// Exporters and regression surfaces

TEST(HostObsExport, JsonCarriesSchemaVersion) {
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions mo;
  mo.num_nodes = 2;
  mo.threads = 2;
  mo.host_profile = true;
  mo.signals.enabled = true;
  const driver::MultiRunResult r =
      driver::run_workload_multi(small_workload("ss"), opts, mo);
  ASSERT_TRUE(r.ok()) << r.check_error;
  ASSERT_NE(r.host, nullptr);
  ASSERT_NE(r.signals, nullptr);

  std::ostringstream hj;
  r.host->write_json(hj);
  const json::Value host = json::parse(hj.str());
  EXPECT_EQ(host.at("schema_version").as_number(), obs::kObsSchemaVersion);
  EXPECT_GT(host.at("wall_ns").as_number(), 0.0);
  EXPECT_TRUE(host.at("phases_ns").is_object());

  std::ostringstream sj;
  r.signals->write_json(sj);
  const json::Value sig = json::parse(sj.str());
  EXPECT_EQ(sig.at("schema_version").as_number(), obs::kObsSchemaVersion);
  EXPECT_EQ(sig.at("nodes").as_array().size(), 2u);

  // The Perfetto merge and the CSV dump parse/emit without issue.
  std::ostringstream trace;
  obs::write_host_chrome_trace(trace, {}, {{"ss / MD", r.host.get()}});
  const json::Value tr = json::parse(trace.str());
  EXPECT_FALSE(tr.at("traceEvents").as_array().empty());
  std::ostringstream csv;
  r.host->write_csv(csv);
  EXPECT_NE(csv.str().find("phase,"), std::string::npos);
}

TEST(ParallelStatsRegression, EqualityAndSummary) {
  mdp::MultiMachine::ParallelStats a;
  a.engaged = true;
  a.threads = 2;
  a.windows = 10;
  a.barriers = 20;
  a.window_limit = 16;
  mdp::MultiMachine::ParallelStats b = a;
  EXPECT_TRUE(a == b);
  b.windows = 11;
  EXPECT_FALSE(a == b);
  mdp::MultiMachine::ParallelStats serial;
  EXPECT_EQ(serial.summary(), "serial");
  EXPECT_NE(a.summary().find("threads=2"), std::string::npos);
  EXPECT_NE(a.summary().find("windows=10"), std::string::npos);

  // And the real engine reports coherent stats end-to-end.
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.threads = 2;
  const driver::MultiRunResult r =
      driver::run_workload_multi(small_workload("ss"), opts, mo);
  ASSERT_TRUE(r.ok()) << r.check_error;
  EXPECT_TRUE(r.parallel.engaged);
  EXPECT_TRUE(r.parallel == r.parallel);
  EXPECT_NE(r.parallel.summary().find("parallel"), std::string::npos);
}

}  // namespace
}  // namespace jtam
