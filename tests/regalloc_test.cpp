// Unit tests for the register allocator and its spiller.

#include <gtest/gtest.h>

#include "support/error.h"
#include "tam/ir.h"
#include "tamc/regalloc.h"

namespace jtam::tamc {
namespace {

using tam::BinOp;
using tam::VOp;
using tam::VOpKind;
using tam::VReg;

VOp konst(VReg dst, std::int32_t v) {
  VOp op;
  op.kind = VOpKind::Const;
  op.dst = dst;
  op.imm = v;
  return op;
}

VOp bin(BinOp bop, VReg dst, VReg a, VReg b) {
  VOp op;
  op.kind = VOpKind::Bin;
  op.bop = bop;
  op.dst = dst;
  op.a = a;
  op.b = b;
  return op;
}

VOp fstore(std::int32_t slot, VReg a) {
  VOp op;
  op.kind = VOpKind::FrameStore;
  op.imm = slot;
  op.a = a;
  return op;
}

TEST(RegAlloc, DisjointRangesShareRegisters) {
  // v0 dies feeding v1; v2 can reuse v0's register.
  std::vector<VOp> body{konst(0, 1), bin(BinOp::Add, 1, 0, 0),
                        konst(2, 2), bin(BinOp::Add, 3, 1, 2),
                        fstore(0, 3)};
  AllocatedBody ab = allocate_registers(body, -1);
  EXPECT_EQ(ab.reg_of.size(), 4u);
  for (mdp::Reg r : ab.reg_of) {
    EXPECT_LE(static_cast<int>(r), 4);  // only R0..R4 are allocatable
  }
}

TEST(RegAlloc, OverlappingRangesGetDistinctRegisters) {
  std::vector<VOp> body{konst(0, 1), konst(1, 2), konst(2, 3),
                        bin(BinOp::Add, 3, 0, 1),
                        bin(BinOp::Add, 4, 3, 2),
                        bin(BinOp::Add, 5, 4, 0),  // v0 still live here
                        fstore(0, 5)};
  AllocatedBody ab = allocate_registers(body, -1);
  EXPECT_NE(ab.reg_of[0], ab.reg_of[1]);
  EXPECT_NE(ab.reg_of[0], ab.reg_of[2]);
  EXPECT_NE(ab.reg_of[1], ab.reg_of[2]);
}

TEST(RegAlloc, ValuesCrossingFpCallsAvoidVolatileRegisters) {
  // v0 lives across the FAdd (used after it): must land in R2-R4.
  std::vector<VOp> body{konst(0, 5),
                        konst(1, 1), konst(2, 2),
                        bin(BinOp::FAdd, 3, 1, 2),
                        bin(BinOp::Add, 4, 3, 0),
                        fstore(0, 4)};
  AllocatedBody ab = allocate_registers(body, -1);
  EXPECT_GE(static_cast<int>(ab.reg_of[0]), 2);
}

TEST(RegAlloc, SixLiveValuesOverflowWithoutSpilling) {
  std::vector<VOp> body;
  for (VReg v = 0; v < 6; ++v) body.push_back(konst(v, v));
  for (VReg v = 0; v < 6; ++v) {
    VOp use = fstore(0, v);
    body.push_back(use);
  }
  EXPECT_THROW(allocate_registers(body, -1), Error);
}

TEST(Spiller, SixLiveValuesSpillCleanly) {
  std::vector<VOp> body;
  for (VReg v = 0; v < 6; ++v) body.push_back(konst(v, 100 + v));
  for (VReg v = 0; v < 6; ++v) body.push_back(fstore(v % 3, v));
  SpilledBody sb = allocate_with_spilling(body, -1);
  EXPECT_GE(sb.num_spill_slots, 1);
  // The rewritten body must contain matching store/load pairs.
  int stores = 0, loads = 0;
  for (const VOp& op : sb.ops) {
    if (op.kind == VOpKind::SpillStore) ++stores;
    if (op.kind == VOpKind::SpillLoad) ++loads;
  }
  EXPECT_GE(stores, 1);
  EXPECT_GE(loads, 1);
  // And the final allocation must be valid (dense, within R0-R4).
  for (mdp::Reg r : sb.alloc.reg_of) {
    EXPECT_LE(static_cast<int>(r), 4);
  }
}

TEST(Spiller, ManyValuesAcrossFpCall) {
  // Five values live across an FP call: only three call-safe registers
  // exist, so at least two must spill.
  std::vector<VOp> body;
  for (VReg v = 0; v < 5; ++v) body.push_back(konst(v, v));
  body.push_back(konst(5, 50));
  body.push_back(konst(6, 60));
  body.push_back(bin(BinOp::FMul, 7, 5, 6));
  for (VReg v = 0; v < 5; ++v) body.push_back(fstore(0, v));
  body.push_back(fstore(1, 7));
  SpilledBody sb = allocate_with_spilling(body, -1);
  EXPECT_GE(sb.num_spill_slots, 2);
}

TEST(Spiller, TerminatorConditionSurvivesSpilling) {
  // Make the condition vreg the longest-lived value so it is the spill
  // victim; the rewritten term_cond must reference the reloaded vreg.
  std::vector<VOp> body;
  body.push_back(konst(0, 1));  // the condition, live to the end
  for (VReg v = 1; v < 7; ++v) body.push_back(konst(v, v));
  for (VReg v = 1; v < 7; ++v) body.push_back(fstore(0, v));
  SpilledBody sb = allocate_with_spilling(body, /*term_cond=*/0);
  EXPECT_GE(sb.term_cond, 0);
  // The final op defining term_cond must be a reload or the original def.
  bool defined = false;
  for (const VOp& op : sb.ops) {
    if (op.dst == sb.term_cond) defined = true;
  }
  EXPECT_TRUE(defined);
}

TEST(Spiller, NoSpillNeededLeavesBodyUntouched) {
  std::vector<VOp> body{konst(0, 1), fstore(0, 0)};
  SpilledBody sb = allocate_with_spilling(body, -1);
  EXPECT_EQ(sb.num_spill_slots, 0);
  EXPECT_EQ(sb.ops.size(), 2u);
}

TEST(Spiller, BoundaryTracksInsertions) {
  // Boundary sits after 6 defs; spill stores inserted before it must
  // shift it.
  std::vector<VOp> body;
  for (VReg v = 0; v < 6; ++v) body.push_back(konst(v, v));
  for (VReg v = 0; v < 6; ++v) body.push_back(fstore(0, v));
  SpilledBody sb = allocate_with_spilling(body, -1, /*boundary=*/6);
  EXPECT_GE(sb.boundary, 6);
  // Everything before the boundary must still be the defining section:
  // count Const defs before boundary == 6.
  int consts_before = 0;
  for (int i = 0; i < sb.boundary; ++i) {
    if (sb.ops[static_cast<std::size_t>(i)].kind == VOpKind::Const) {
      ++consts_before;
    }
  }
  EXPECT_EQ(consts_before, 6);
}

TEST(RegAlloc, CollectUsesCoversEveryKind) {
  std::vector<VReg> uses;
  VOp op;
  op.kind = VOpKind::SendDyn;
  op.a = 1;
  op.b = 2;
  op.args = {3, 4};
  collect_uses(op, uses);
  EXPECT_EQ(uses.size(), 4u);
  uses.clear();
  op = VOp{};
  op.kind = VOpKind::Select;
  op.c = 0;
  op.a = 1;
  op.b = 2;
  collect_uses(op, uses);
  EXPECT_EQ(uses.size(), 3u);
}

TEST(RegAlloc, FpCallDetection) {
  VOp op;
  op.kind = VOpKind::Bin;
  op.bop = BinOp::FAdd;
  EXPECT_TRUE(is_fp_call(op));
  op.bop = BinOp::Add;
  EXPECT_FALSE(is_fp_call(op));
}

}  // namespace
}  // namespace jtam::tamc
