// Unit tests for the set-associative cache simulator.

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/cache_bank.h"
#include "support/error.h"

namespace jtam::cache {
namespace {

TEST(CacheConfig, GeometryDerivation) {
  CacheConfig cfg{8192, 64, 4};
  EXPECT_EQ(cfg.num_blocks(), 128u);
  EXPECT_EQ(cfg.num_sets(), 32u);
  EXPECT_EQ(cfg.name(), "8K/4-way/64B");
}

TEST(CacheConfig, RejectsBadGeometry) {
  EXPECT_THROW((CacheConfig{3000, 64, 4}.validate()), Error);
  EXPECT_THROW((CacheConfig{8192, 48, 4}.validate()), Error);
  EXPECT_THROW((CacheConfig{8192, 64, 3}.validate()), Error);
  EXPECT_THROW((CacheConfig{64, 64, 4}.validate()), Error);  // < 1 set
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(CacheConfig{1024, 64, 1});
  EXPECT_FALSE(c.read(0x1000));
  EXPECT_TRUE(c.read(0x1000));
  EXPECT_TRUE(c.read(0x103C));  // same 64-byte block
  EXPECT_FALSE(c.read(0x1040));  // next block
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict) {
  // 1K direct-mapped, 64B blocks -> 16 sets; addresses 1K apart conflict.
  SetAssocCache c(CacheConfig{1024, 64, 1});
  EXPECT_FALSE(c.read(0x0000));
  EXPECT_FALSE(c.read(0x0400));
  EXPECT_FALSE(c.read(0x0000));  // evicted by the conflicting block
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0400));
}

TEST(Cache, TwoWayAbsorbsThatConflict) {
  SetAssocCache c(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(c.read(0x0000));
  EXPECT_FALSE(c.read(0x0400));
  EXPECT_TRUE(c.read(0x0000));
  EXPECT_TRUE(c.read(0x0400));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c(CacheConfig{256, 64, 4});  // one set of four ways
  c.read(0x0000);
  c.read(0x0100);
  c.read(0x0200);
  c.read(0x0300);
  c.read(0x0000);  // refresh block 0
  c.read(0x0400);  // evicts 0x0100 (the LRU), not 0x0000
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0100));
  EXPECT_TRUE(c.contains(0x0200));
}

TEST(Cache, WriteBackCountsDirtyEvictions) {
  SetAssocCache c(CacheConfig{256, 64, 1});  // 4 sets
  c.access(0x0000, /*is_write=*/true);
  EXPECT_EQ(c.stats().writebacks, 0u);
  c.read(0x0100);  // evicts the dirty block at set 0
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.read(0x0200);  // evicts a clean block
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteAllocates) {
  SetAssocCache c(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(c.access(0x2000, /*is_write=*/true));
  EXPECT_TRUE(c.read(0x2000));
}

TEST(Cache, ResetClearsEverything) {
  SetAssocCache c(CacheConfig{1024, 64, 2});
  c.read(0x0000);
  c.reset();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_FALSE(c.contains(0x0000));
}

// LRU inclusion property: with the same number of sets, higher
// associativity can never produce more misses (set-associative LRU is a
// stack algorithm per set).
TEST(Cache, LruInclusionAcrossAssociativity) {
  CacheConfig small{4096, 32, 1};   // 128 sets
  CacheConfig big{8192, 32, 2};     // 128 sets, double the ways
  SetAssocCache c1(small);
  SetAssocCache c2(big);
  std::uint32_t x = 12345;
  for (int i = 0; i < 20000; ++i) {
    x = x * 1664525u + 1013904223u;
    std::uint32_t addr = (x >> 8) & 0xFFFF0u;
    bool w = (x & 1u) != 0;
    c1.access(addr, w);
    c2.access(addr, w);
  }
  EXPECT_LE(c2.stats().misses, c1.stats().misses);
}

TEST(CacheBank, PaperBankHasAllConfigs) {
  CacheBank bank = CacheBank::paper_bank();
  EXPECT_EQ(bank.size(), 24u);  // 8 sizes x 3 associativities
  for (std::uint32_t assoc : paper_associativities()) {
    for (std::uint32_t size : paper_cache_sizes()) {
      EXPECT_NO_THROW(bank.find(size, assoc));
    }
  }
  EXPECT_THROW(bank.find(999, 1), Error);
}

// The precomputed (size, assoc) -> index map must agree with positional
// lookup for every configuration and keep the throws-if-absent contract.
TEST(CacheBank, FindReturnsMatchingIndexAndThrowsWhenAbsent) {
  CacheBank bank = CacheBank::paper_bank();
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const CacheConfig& c = bank.configs()[i];
    EXPECT_EQ(bank.find(c.size_bytes, c.assoc), i) << c.name();
  }
  EXPECT_THROW(bank.find(8192, 8), Error);  // ladder size, absent assoc
  EXPECT_THROW(bank.find(999, 1), Error);   // absent size
}

TEST(CacheBank, FansOutToAllConfigs) {
  CacheBank bank = CacheBank::paper_bank();
  bank.on_fetch(0x1000);
  bank.on_data(0x2000, true);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    EXPECT_EQ(bank.at(i).icache.stats().accesses, 1u);
    EXPECT_EQ(bank.at(i).dcache.stats().accesses, 1u);
  }
}

}  // namespace
}  // namespace jtam::cache
