#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using jtam::support::ThreadPool;

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++touched[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);  // no data race possible: everything ran inline
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The caller participates in the iteration loop, so an inner
  // parallel_for issued from a worker always makes progress even when
  // every worker is busy with the outer loop.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> n{0};
  ThreadPool::shared().parallel_for(32, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
