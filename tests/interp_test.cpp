// Decoded-dispatch equivalence and decode-cache invalidation.
//
// The decoded micro-op engine (src/mdp/dispatch.cpp) exists purely to make
// simulation cheaper; it must never change an architectural or measured
// result.  This file pins that the way tests/stacksim_test.cpp pins the
// cache engine:
//
//  * full-run equivalence — for every paper workload under both back-ends,
//    decoded and classic dispatch produce bit-identical RunResults
//    (status, halt value, instruction counts, granularity, access counts,
//    all 24 cache configurations, queue high-water), on the batched and
//    the per-event trace path, serial and sharded;
//  * trace-stream equivalence — on a hand-assembled program crossing every
//    superblock boundary kind, the exact per-event sink sequence (fetches,
//    reads, writes, marks, in order) matches;
//  * flow equivalence — multi-node causal flow decompositions match
//    span-for-span;
//  * invalidation — patch_code and load_image must drop stale micro-ops,
//    so code patched between steps is never executed from the decode
//    cache.
//
// The dispatch knob is excluded from the run-memo key (both kinds are the
// same measurement), so every comparison here clears the memo first — a
// memo hit would compare a result with itself and prove nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "mdp/assembler.h"
#include "mdp/isa.h"
#include "mdp/machine.h"
#include "obs/flow.h"
#include "programs/registry.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

programs::Scale quick_scale() {
  return programs::Scale{12, 60, 10, 10, 12, 2, 40};
}

void expect_same_run(const driver::RunResult& a, const driver::RunResult& b,
                     const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.check_error, b.check_error);
  EXPECT_EQ(a.instructions, b.instructions);

  EXPECT_EQ(a.gran.threads, b.gran.threads);
  EXPECT_EQ(a.gran.inlets, b.gran.inlets);
  EXPECT_EQ(a.gran.quanta, b.gran.quanta);
  EXPECT_EQ(a.gran.activations, b.gran.activations);
  EXPECT_EQ(a.gran.fp_calls, b.gran.fp_calls);
  EXPECT_EQ(a.gran.thread_instrs, b.gran.thread_instrs);
  EXPECT_EQ(a.gran.inlet_instrs, b.gran.inlet_instrs);
  EXPECT_EQ(a.gran.sched_instrs, b.gran.sched_instrs);
  EXPECT_EQ(a.gran.handler_instrs, b.gran.handler_instrs);
  EXPECT_EQ(a.gran.quantum_instrs, b.gran.quantum_instrs);

  for (int l = 0; l < metrics::kNumLevels; ++l) {
    for (int r = 0; r < metrics::kNumRegions; ++r) {
      EXPECT_EQ(a.counts.fetch[l][r], b.counts.fetch[l][r]) << l << "," << r;
      EXPECT_EQ(a.counts.read[l][r], b.counts.read[l][r]) << l << "," << r;
      EXPECT_EQ(a.counts.write[l][r], b.counts.write[l][r]) << l << "," << r;
    }
  }

  ASSERT_EQ(a.cache.size(), b.cache.size());
  for (std::size_t i = 0; i < a.cache.size(); ++i) {
    SCOPED_TRACE(a.cache[i].config.name());
    EXPECT_EQ(a.cache[i].icache.accesses, b.cache[i].icache.accesses);
    EXPECT_EQ(a.cache[i].icache.misses, b.cache[i].icache.misses);
    EXPECT_EQ(a.cache[i].icache.writebacks, b.cache[i].icache.writebacks);
    EXPECT_EQ(a.cache[i].dcache.accesses, b.cache[i].dcache.accesses);
    EXPECT_EQ(a.cache[i].dcache.misses, b.cache[i].dcache.misses);
    EXPECT_EQ(a.cache[i].dcache.writebacks, b.cache[i].dcache.writebacks);
  }

  EXPECT_EQ(a.queue_high_water[0], b.queue_high_water[0]);
  EXPECT_EQ(a.queue_high_water[1], b.queue_high_water[1]);
}

/// Run one workload under `opts` with a cold memo, so a decoded and a
/// classic run can never share one memoized result.
driver::RunResult cold_run(const programs::Workload& w,
                           driver::RunOptions opts) {
  driver::clear_run_memo();
  return driver::run_workload(w, opts);
}

class InterpEquivalence
    : public ::testing::TestWithParam<rt::BackendKind> {};

TEST_P(InterpEquivalence, MatchesClassicOnEveryWorkload) {
  for (const programs::Workload& w : programs::paper_workloads(quick_scale())) {
    driver::RunOptions classic;
    classic.backend = GetParam();
    classic.dispatch = mdp::DispatchKind::Classic;
    classic.cache_workers = 1;
    const driver::RunResult base = cold_run(w, classic);
    ASSERT_TRUE(base.ok()) << w.name << ": " << base.check_error;
    ASSERT_EQ(base.cache.size(), 24u);

    driver::RunOptions decoded = classic;
    decoded.dispatch = mdp::DispatchKind::Decoded;
    expect_same_run(base, cold_run(w, decoded), w.name + " decoded-serial");

    decoded.cache_workers = 4;  // decoded atop the sharded cache pool
    expect_same_run(base, cold_run(w, decoded), w.name + " decoded-sharded");
  }
}

TEST_P(InterpEquivalence, MatchesClassicOnPerEventTracePath) {
  // The seed per-event TraceSink path (batched_trace off) exercises the
  // other JTAM_ACCT branch: sink_->on_fetch per instruction instead of
  // TraceBuffer appends.
  for (const programs::Workload& w : programs::paper_workloads(quick_scale())) {
    driver::RunOptions classic;
    classic.backend = GetParam();
    classic.dispatch = mdp::DispatchKind::Classic;
    classic.batched_trace = false;
    classic.engine = driver::CacheEngine::Classic;
    classic.cache_workers = 1;
    const driver::RunResult base = cold_run(w, classic);
    ASSERT_TRUE(base.ok()) << w.name << ": " << base.check_error;

    driver::RunOptions decoded = classic;
    decoded.dispatch = mdp::DispatchKind::Decoded;
    expect_same_run(base, cold_run(w, decoded), w.name + " per-event");
  }
}

TEST_P(InterpEquivalence, MatchesClassicWithHooksOff) {
  // Measurement hooks off entirely (no cache ladder): only the
  // architectural outcome and the machine's own counters remain.
  for (const programs::Workload& w : programs::paper_workloads(quick_scale())) {
    driver::RunOptions classic;
    classic.backend = GetParam();
    classic.dispatch = mdp::DispatchKind::Classic;
    classic.with_cache = false;
    const driver::RunResult base = cold_run(w, classic);
    ASSERT_TRUE(base.ok()) << w.name << ": " << base.check_error;

    driver::RunOptions decoded = classic;
    decoded.dispatch = mdp::DispatchKind::Decoded;
    expect_same_run(base, cold_run(w, decoded), w.name + " hooks-off");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, InterpEquivalence,
    ::testing::Values(rt::BackendKind::MessageDriven,
                      rt::BackendKind::ActiveMessages),
    [](const auto& info) {
      return info.param == rt::BackendKind::MessageDriven ? "MD" : "AM";
    });

// ---------------------------------------------------------------------------
// Trace-stream equivalence at the machine level: the exact event sequence.

struct Event {
  char kind;  // 'f' fetch, 'r' read, 'w' write, 'm' mark
  std::uint32_t a;
  std::uint32_t b;

  bool operator==(const Event&) const = default;
};

class RecordingSink final : public mdp::TraceSink {
 public:
  void on_fetch(mem::Addr a, mdp::Priority p) override {
    ev.push_back({'f', a, static_cast<std::uint32_t>(p)});
  }
  void on_read(mem::Addr a, mdp::Priority p) override {
    ev.push_back({'r', a, static_cast<std::uint32_t>(p)});
  }
  void on_write(mem::Addr a, mdp::Priority p) override {
    ev.push_back({'w', a, static_cast<std::uint32_t>(p)});
  }
  void on_mark(mdp::MarkKind k, std::uint32_t aux, mdp::Priority p) override {
    ev.push_back({'m', (static_cast<std::uint32_t>(k) << 8) |
                           static_cast<std::uint32_t>(p),
                  aux});
  }

  std::vector<Event> ev;
};

/// A small program crossing every superblock boundary kind: straight-line
/// arithmetic, a data store/load, a backward branch, a low-priority send
/// (SENDE), SUSPEND, and a final handler that halts.
mdp::CodeImage boundary_program() {
  using namespace mdp;
  Assembler a;
  a.section(Section::SysCode);
  auto loop = a.label("loop");
  auto fin = a.label("fin");

  auto entry = a.here("entry");
  a.movi(R1, 5);
  a.movi(R2, static_cast<std::int32_t>(mem::kUserDataBase + 0x40));
  a.bind(loop);
  a.alui(Op::Subi, R1, R1, 1);
  a.st(R2, 0, R1);            // data write each iteration
  a.ld(R3, R2, 0);            // and a read back
  a.brnz(R1, loop);
  a.sendl();                  // compose a local low message -> fin
  a.sendwi(fin);
  a.sende();
  a.suspend();

  a.bind(fin);
  a.halt(R3);
  a.suspend();

  CodeImage img = a.link();
  (void)entry;
  return img;
}

std::vector<Event> record_run(mdp::DispatchKind d) {
  mdp::CodeImage img = boundary_program();
  mdp::Machine m(img);
  m.set_dispatch(d);
  RecordingSink sink;
  m.set_sink(&sink);
  const std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(mdp::Priority::Low, boot);
  EXPECT_EQ(m.run(), mdp::RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 0u);
  return sink.ev;
}

TEST(InterpTraceStream, EventSequencesIdentical) {
  const std::vector<Event> classic = record_run(mdp::DispatchKind::Classic);
  const std::vector<Event> decoded = record_run(mdp::DispatchKind::Decoded);
  ASSERT_FALSE(classic.empty());
  ASSERT_EQ(classic.size(), decoded.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    ASSERT_EQ(classic[i], decoded[i]) << "event " << i;
  }
}

TEST(InterpTraceStream, BudgetBoundariesIdentical) {
  // Chop the same run into 1-instruction budget slices: the decoded
  // engine's charge points (including its superblock chaining) must agree
  // with the classic loop step for step.
  for (std::uint64_t slice : {1ull, 3ull, 7ull}) {
    SCOPED_TRACE(slice);
    std::vector<std::uint64_t> counts[2];
    int k = 0;
    for (mdp::DispatchKind d :
         {mdp::DispatchKind::Classic, mdp::DispatchKind::Decoded}) {
      mdp::CodeImage img = boundary_program();
      mdp::Machine m(img);
      m.set_dispatch(d);
      const std::uint32_t boot[] = {img.symbol("entry")};
      m.inject(mdp::Priority::Low, boot);
      while (m.run_steps(slice) == mdp::RunStatus::Budget) {
        counts[k].push_back(m.instructions_executed());
      }
      counts[k].push_back(m.instructions_executed());
      EXPECT_TRUE(m.halted());
      ++k;
    }
    EXPECT_EQ(counts[0], counts[1]);
  }
}

// ---------------------------------------------------------------------------
// Flow decompositions (multi-node causal tracing) are dispatch-invariant.

TEST(InterpFlow, FlowDecompositionIdentical) {
  driver::MultiRunResult runs[2];
  int k = 0;
  for (mdp::DispatchKind d :
       {mdp::DispatchKind::Classic, mdp::DispatchKind::Decoded}) {
    programs::Workload w = programs::make_mmt(6);
    driver::RunOptions opts;
    opts.backend = rt::BackendKind::ActiveMessages;
    opts.dispatch = d;
    driver::MultiOptions mopts;
    mopts.num_nodes = 4;
    mopts.net = net::NetKind::Mesh;
    mopts.flow.enabled = true;
    runs[k] = driver::run_workload_multi(w, opts, mopts);
    ASSERT_TRUE(runs[k].ok()) << runs[k].check_error;
    ASSERT_NE(runs[k].flow, nullptr);
    ++k;
  }
  const obs::FlowTrace& a = *runs[0].flow;
  const obs::FlowTrace& b = *runs[1].flow;
  EXPECT_EQ(a.final_round, b.final_round);
  EXPECT_EQ(a.halt_msg, b.halt_msg);
  EXPECT_EQ(a.halt_node, b.halt_node);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    SCOPED_TRACE(i);
    const obs::FlowMessage& ma = a.messages[i];
    const obs::FlowMessage& mb = b.messages[i];
    EXPECT_EQ(ma.id, mb.id);
    EXPECT_EQ(ma.parent, mb.parent);
    EXPECT_EQ(ma.kind, mb.kind);
    EXPECT_EQ(ma.priority, mb.priority);
    EXPECT_EQ(ma.src_node, mb.src_node);
    EXPECT_EQ(ma.dest_node, mb.dest_node);
    EXPECT_EQ(ma.handler, mb.handler);
    EXPECT_EQ(ma.length_words, mb.length_words);
  }
}

// ---------------------------------------------------------------------------
// Decode-cache invalidation: stale micro-ops must never execute.

mdp::CodeImage halting_program(std::uint32_t value) {
  using namespace mdp;
  Assembler a;
  a.section(Section::SysCode);
  auto entry = a.here("entry");
  a.nop();  // step 0: lets a run_steps(1) warm the decode cache first
  a.movi(R0, value);
  a.halt(R0);
  a.suspend();
  (void)entry;
  return a.link();
}

TEST(InterpInvalidation, PatchCodeDropsStaleUops) {
  mdp::CodeImage img = halting_program(1);
  mdp::Machine m(img);
  m.set_dispatch(mdp::DispatchKind::Decoded);
  const std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(mdp::Priority::Low, boot);

  // One budget step: the decoded engine decodes the image and executes
  // through the NOP, leaving the MOVI as a cached micro-op.
  ASSERT_EQ(m.run_steps(1), mdp::RunStatus::Budget);

  // Host-side patch of the MOVI immediate.  If invalidation leaked, the
  // stale micro-op would still load 1.
  mdp::Instr patched;
  patched.op = mdp::Op::Movi;
  patched.rd = mdp::R0;
  patched.imm = 42;
  m.patch_code(img.symbol("entry") + mem::kWordBytes, patched);

  ASSERT_EQ(m.run(), mdp::RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 42u);
}

TEST(InterpInvalidation, LoadImageDropsStaleUops) {
  mdp::CodeImage img1 = halting_program(7);
  mdp::Machine m(img1);
  m.set_dispatch(mdp::DispatchKind::Decoded);
  const std::uint32_t boot[] = {img1.symbol("entry")};
  m.inject(mdp::Priority::Low, boot);
  ASSERT_EQ(m.run_steps(1), mdp::RunStatus::Budget);  // decode cache warm

  // Reload with an image identical in layout but different in content —
  // the classic analogue of a program reload over the same addresses.
  m.load_image(halting_program(9));
  ASSERT_EQ(m.run(), mdp::RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 9u);
}

TEST(InterpInvalidation, ClassicAgreesAfterPatch) {
  for (mdp::DispatchKind d :
       {mdp::DispatchKind::Classic, mdp::DispatchKind::Decoded}) {
    SCOPED_TRACE(mdp::dispatch_kind_name(d));
    mdp::CodeImage img = halting_program(1);
    mdp::Machine m(img);
    m.set_dispatch(d);
    const std::uint32_t boot[] = {img.symbol("entry")};
    m.inject(mdp::Priority::Low, boot);
    ASSERT_EQ(m.run_steps(1), mdp::RunStatus::Budget);
    mdp::Instr patched;
    patched.op = mdp::Op::Movi;
    patched.rd = mdp::R0;
    patched.imm = 42;
    m.patch_code(img.symbol("entry") + mem::kWordBytes, patched);
    ASSERT_EQ(m.run(), mdp::RunStatus::Halted);
    EXPECT_EQ(m.halt_value(), 42u);
  }
}

// ---------------------------------------------------------------------------
// Naming tables stay exhaustive (satellite: consolidated RunStatus /
// dispatch naming in isa.h).

TEST(InterpNaming, EveryEnumValueHasAName) {
  for (mdp::RunStatus s :
       {mdp::RunStatus::Halted, mdp::RunStatus::Budget,
        mdp::RunStatus::Deadlock}) {
    EXPECT_STRNE(mdp::run_status_name(s), "");
  }
  EXPECT_STREQ(mdp::dispatch_kind_name(mdp::DispatchKind::Decoded),
               "decoded");
  EXPECT_STREQ(mdp::dispatch_kind_name(mdp::DispatchKind::Classic),
               "classic");
}

}  // namespace
