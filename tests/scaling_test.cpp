// Parameterized scaling sweeps: every workload must stay correct across a
// range of problem sizes under both pure back-ends, including degenerate
// and odd/even edge sizes.

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "programs/registry.h"

namespace jtam {
namespace {

void run_ok(const programs::Workload& w, rt::BackendKind b) {
  driver::RunOptions opts;
  opts.backend = b;
  opts.with_cache = false;
  driver::RunResult r = driver::run_workload(w, opts);
  EXPECT_TRUE(r.ok()) << w.name << "/" << rt::backend_name(b) << ": "
                      << r.check_error;
}

class SortScaling : public ::testing::TestWithParam<int> {};

TEST_P(SortScaling, QuicksortSortsEverySize) {
  for (std::uint32_t seed : {1u, 77u, 0xFFFFFFFFu}) {
    programs::Workload w = programs::make_quicksort(GetParam(), seed);
    run_ok(w, rt::BackendKind::MessageDriven);
    run_ok(w, rt::BackendKind::ActiveMessages);
  }
}

TEST_P(SortScaling, SelectionSortSortsEverySize) {
  if (GetParam() < 2) GTEST_SKIP() << "selection sort needs n >= 2";
  programs::Workload w = programs::make_selection_sort(GetParam());
  run_ok(w, rt::BackendKind::MessageDriven);
  run_ok(w, rt::BackendKind::ActiveMessages);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortScaling,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 33, 64));

class GridScaling : public ::testing::TestWithParam<int> {};

TEST_P(GridScaling, MmtAndDtwAndWavefront) {
  run_ok(programs::make_mmt(GetParam()), rt::BackendKind::MessageDriven);
  run_ok(programs::make_mmt(GetParam()), rt::BackendKind::ActiveMessages);
  run_ok(programs::make_dtw(GetParam()), rt::BackendKind::MessageDriven);
  run_ok(programs::make_dtw(GetParam()), rt::BackendKind::ActiveMessages);
  run_ok(programs::make_wavefront(GetParam(), 2),
         rt::BackendKind::MessageDriven);
  run_ok(programs::make_wavefront(GetParam(), 2),
         rt::BackendKind::ActiveMessages);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridScaling, ::testing::Values(2, 3, 5, 9));

class ParaffinScaling : public ::testing::TestWithParam<int> {};

TEST_P(ParaffinScaling, CountsMatchOracleAtEverySize) {
  programs::Workload w = programs::make_paraffins(GetParam());
  run_ok(w, rt::BackendKind::MessageDriven);
  run_ok(w, rt::BackendKind::ActiveMessages);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParaffinScaling,
                         ::testing::Values(1, 2, 3, 4, 7, 12));

TEST(Scaling, WavefrontManySteps) {
  run_ok(programs::make_wavefront(6, 7), rt::BackendKind::MessageDriven);
  run_ok(programs::make_wavefront(6, 7), rt::BackendKind::ActiveMessages);
}

}  // namespace
}  // namespace jtam
