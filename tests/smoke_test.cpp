// End-to-end smoke test: selection sort through the full stack (TAM IR ->
// compiler -> MDP machine -> oracle) under both back-ends.

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "programs/registry.h"

namespace jtam {
namespace {

TEST(Smoke, SelectionSortRunsUnderBothBackends) {
  programs::Workload w = programs::make_selection_sort(12);
  driver::RunOptions opts;
  opts.with_cache = false;

  opts.backend = rt::BackendKind::MessageDriven;
  driver::RunResult md = driver::run_workload(w, opts);
  EXPECT_TRUE(md.ok()) << md.check_error;

  opts.backend = rt::BackendKind::ActiveMessages;
  driver::RunResult am = driver::run_workload(w, opts);
  EXPECT_TRUE(am.ok()) << am.check_error;

  // Selection sort is one frame: a handful of quanta, many threads each.
  EXPECT_GT(md.gran.threads, 100u);
  EXPECT_GT(am.gran.threads, 100u);
  EXPECT_GT(md.gran.tpq(), 10.0);
  EXPECT_GT(am.gran.tpq(), 10.0);
}

}  // namespace
}  // namespace jtam
