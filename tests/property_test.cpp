// Parameterized property tests over the full workload x back-end x
// option matrix, plus paper-shape invariants (Table 2 orderings, §3.1
// count relations).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "driver/experiment.h"
#include "programs/registry.h"
#include "support/error.h"

namespace jtam {
namespace {

programs::Workload workload_by_name(const std::string& name) {
  // Small sizes: these run for every parameter combination.
  if (name == "mmt") return programs::make_mmt(6);
  if (name == "qs") return programs::make_quicksort(24);
  if (name == "dtw") return programs::make_dtw(7);
  if (name == "paraffins") return programs::make_paraffins(8);
  if (name == "wavefront") return programs::make_wavefront(8, 2);
  if (name == "ss") return programs::make_selection_sort(16);
  throw Error("unknown workload " + name);
}

// --- every workload x backend x md-opt x enabled combination is correct ---

using Combo = std::tuple<const char*, rt::BackendKind, bool, bool>;

class WorkloadMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(WorkloadMatrix, OraclePasses) {
  auto [name, backend, opt, enabled] = GetParam();
  driver::RunOptions opts;
  opts.backend = backend;
  opts.md = opt ? tamc::MdOptions::all() : tamc::MdOptions::none();
  opts.am_enabled_variant = enabled;
  opts.with_cache = false;
  driver::RunResult r = driver::run_workload(workload_by_name(name), opts);
  EXPECT_TRUE(r.ok()) << name << ": " << r.check_error;
  EXPECT_GT(r.gran.threads, 0u);
  EXPECT_GT(r.gran.quanta, 0u);
  EXPECT_GT(r.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadMatrix,
    ::testing::Combine(
        ::testing::Values("mmt", "qs", "dtw", "paraffins", "wavefront",
                          "ss"),
        ::testing::Values(rt::BackendKind::MessageDriven,
                          rt::BackendKind::ActiveMessages),
        ::testing::Bool(),   // §2.3 MD optimizations
        ::testing::Bool()),  // §2.4 enabled AM variant
    [](const ::testing::TestParamInfo<Combo>& info) {
      // NOTE: no structured bindings here — the preprocessor would split
      // the macro argument at the commas inside the bracket list.
      std::string s = std::get<0>(info.param);
      s += std::get<1>(info.param) == rt::BackendKind::MessageDriven
               ? "_MD"
               : "_AM";
      if (std::get<2>(info.param)) s += "_opt";
      if (std::get<3>(info.param)) s += "_enabled";
      return s;
    });

// --- paper-shape invariants (run once at medium scale, shared) -------------

class PaperShape : public ::testing::Test {
 protected:
  static const std::map<std::string, driver::BackendPair>& runs() {
    static const std::map<std::string, driver::BackendPair> r = [] {
      std::map<std::string, driver::BackendPair> out;
      programs::Scale s{16, 80, 12, 11, 16, 3, 60};  // medium test scale
      driver::RunOptions opts;
      for (const programs::Workload& w : programs::paper_workloads(s)) {
        out.emplace(w.name, driver::run_both(w, opts));
      }
      return out;
    }();
    return r;
  }
};

TEST_F(PaperShape, EveryRunPassesItsOracle) {
  for (const auto& [name, p] : runs()) {
    EXPECT_TRUE(p.md.ok()) << name << " MD: " << p.md.check_error;
    EXPECT_TRUE(p.am.ok()) << name << " AM: " << p.am.check_error;
  }
}

TEST_F(PaperShape, MdExecutesFewerInstructionsEverywhere) {
  // §3.1: the MD implementation eliminates post-library calls, frame-queue
  // management and CV pops; it must run fewer instructions per program.
  for (const auto& [name, p] : runs()) {
    EXPECT_LT(p.md.instructions, p.am.instructions) << name;
  }
}

TEST_F(PaperShape, MdReducesReadsWritesAndFetches) {
  for (const auto& [name, p] : runs()) {
    EXPECT_LT(p.md.counts.total_reads(), p.am.counts.total_reads()) << name;
    EXPECT_LT(p.md.counts.total_writes(), p.am.counts.total_writes())
        << name;
    EXPECT_LT(p.md.counts.total_fetches(), p.am.counts.total_fetches())
        << name;
  }
}

TEST_F(PaperShape, AmQuantaAreAtLeastAsCoarse) {
  // Table 2: "the AM implementation has higher numbers of instructions and
  // threads per quantum, almost without exception."
  for (const auto& [name, p] : runs()) {
    EXPECT_GE(p.am.gran.tpq(), p.md.gran.tpq() * 0.95) << name;
    EXPECT_GT(p.am.gran.ipt(), p.md.gran.ipt()) << name;
  }
}

TEST_F(PaperShape, SelectionSortIsTheCoarsestProgram) {
  const auto& r = runs();
  const double ss_tpq = r.at("ss").md.gran.tpq();
  for (const auto& [name, p] : r) {
    if (name == "ss") continue;
    EXPECT_GT(ss_tpq, 10.0 * p.md.gran.tpq()) << name;
  }
}

TEST_F(PaperShape, WavefrontIsSecondCoarsest) {
  const auto& r = runs();
  const double wf = r.at("wavefront").md.gran.tpq();
  for (const char* fine : {"mmt", "qs", "dtw", "paraffins"}) {
    EXPECT_GT(wf, r.at(fine).md.gran.tpq()) << fine;
  }
}

TEST_F(PaperShape, CycleRatioRisesWithMissPenalty) {
  // §3.3: higher miss penalties favour the AM implementation, so the
  // MD/AM ratio must be non-decreasing in the penalty at medium caches.
  for (const auto& [name, p] : runs()) {
    const double r12 = p.ratio(8192, 4, 12);
    const double r48 = p.ratio(8192, 4, 48);
    EXPECT_GE(r48, r12 * 0.999) << name;
  }
}

TEST_F(PaperShape, SelectionSortHasTheLowestCycleRatio) {
  // Table 2's cycle-ratio column is ordered by TPQ; selection sort sits at
  // the bottom at every penalty.
  const auto& r = runs();
  for (std::uint32_t pen : {12u, 24u, 48u}) {
    const double ss = r.at("ss").ratio(8192, 4, pen);
    for (const auto& [name, p] : r) {
      if (name == "ss") continue;
      EXPECT_LT(ss, p.ratio(8192, 4, pen)) << name << " pen=" << pen;
    }
  }
}

TEST_F(PaperShape, QueuesStayWithinTheHardwareLimit) {
  // §2.3: "we do not address [overflow], only running programs that fit in
  // the message queue.  We verified that substantial problems could be
  // solved without using all the memory available for message queues."
  for (const auto& [name, p] : runs()) {
    EXPECT_LT(p.md.queue_high_water[0], mem::kQueueBytes) << name;
    EXPECT_LT(p.md.queue_high_water[1], mem::kQueueBytes) << name;
    EXPECT_LT(p.am.queue_high_water[1], mem::kQueueBytes) << name;
  }
}

TEST_F(PaperShape, MdQueuesRunDeeperThanAm) {
  // The MD implementation uses the queue as the task queue, so its
  // low-priority queue occupancy dwarfs AM's ("greater likelihood of
  // overflowing", §2.3 consequence 1).
  for (const auto& [name, p] : runs()) {
    EXPECT_GT(p.md.queue_high_water[0], p.am.queue_high_water[0]) << name;
  }
}

TEST_F(PaperShape, InstructionCacheFavoursMdInSmallDirectMappedCaches) {
  // §3.3.2: AM's lesser control locality hurts its instruction-cache
  // performance; in small direct-mapped caches MD must take fewer I-misses.
  for (const auto& [name, p] : runs()) {
    const auto& md = p.md.config(1024, 1);
    const auto& am = p.am.config(1024, 1);
    EXPECT_LT(md.icache.misses, am.icache.misses) << name;
  }
}

}  // namespace
}  // namespace jtam
