// Locality observatory — attribution conservation and zero-cost contract.
//
// The central property: attribution only *partitions* counts, never changes
// them.  Summing the keyed engine's per-key hit/miss/write-back counters
// over all keys must be bit-identical to the unkeyed StackStream and to
// SetAssocCache on the same stream (randomized streams, degenerate
// geometries included), and a LocalityReport's itotal/dtotal must be
// bit-identical to the measured cache ladder of the same run for every
// configuration, every paper program, both back-ends, serial and sharded.
// And like every obs collector, --locality must leave the measured
// RunResult bit-identical to an untraced run.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cache/attr_stack.h"
#include "cache/cache.h"
#include "cache/cache_bank.h"
#include "cache/stack_sim.h"
#include "driver/experiment.h"
#include "obs/obs.h"
#include "programs/registry.h"
#include "support/json.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

programs::Scale quick_scale() {
  return programs::Scale{12, 60, 10, 10, 12, 2, 40};
}

programs::Workload workload_by_name(const std::string& name) {
  for (programs::Workload& w : programs::paper_workloads(quick_scale())) {
    if (w.name == name) return w;
  }
  ADD_FAILURE() << "no workload named " << name;
  return {};
}

// (addr, is_write, key) stream from a deterministic LCG.
struct KeyedRef {
  std::uint32_t addr;
  bool is_write;
  std::uint32_t key;
};

std::vector<KeyedRef> keyed_stream(int n, std::uint32_t seed,
                                   std::uint32_t addr_mask,
                                   std::uint32_t num_keys) {
  std::vector<KeyedRef> out;
  out.reserve(static_cast<std::size_t>(n));
  std::uint32_t x = seed;
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    out.push_back({(x >> 7) & addr_mask & ~3u, (x & 1) != 0,
                   (x >> 3) % num_keys});
  }
  return out;
}

// Feed one stream through the keyed engine, the unkeyed stack engine, and
// one SetAssocCache per config; require bit-identical totals and per-key
// sums everywhere.
void expect_conservation(const std::vector<cache::CacheConfig>& cfgs,
                         const std::vector<KeyedRef>& refs,
                         std::uint32_t num_keys) {
  cache::AttrStackStream attr(cfgs, num_keys);
  cache::StackStream stack(cfgs, /*shard=*/0, /*num_shards=*/1);
  std::vector<cache::SetAssocCache> classic;
  for (const cache::CacheConfig& c : cfgs) classic.emplace_back(c);

  for (const KeyedRef& r : refs) {
    attr.access(r.addr, r.is_write, r.key);
    stack.access(r.addr, r.is_write);
    for (cache::SetAssocCache& c : classic) c.access(r.addr, r.is_write);
  }

  std::uint64_t key_accesses = 0;
  for (std::uint32_t k = 0; k < num_keys; ++k) {
    key_accesses += attr.accesses_of(k);
  }
  EXPECT_EQ(key_accesses, refs.size());

  for (std::size_t c = 0; c < cfgs.size(); ++c) {
    SCOPED_TRACE(cfgs[c].name());
    const cache::CacheStats total = attr.total_for(c);
    const cache::CacheStats stk = stack.stats_for(c);
    const cache::CacheStats& cls = classic[c].stats();

    cache::CacheStats keyed;
    for (std::uint32_t k = 0; k < num_keys; ++k) {
      const cache::CacheStats s = attr.stats_for(c, k);
      keyed.accesses += s.accesses;
      keyed.misses += s.misses;
      keyed.writebacks += s.writebacks;
    }
    EXPECT_EQ(keyed.accesses, total.accesses);
    EXPECT_EQ(keyed.misses, total.misses);
    EXPECT_EQ(keyed.writebacks, total.writebacks);

    EXPECT_EQ(total.accesses, stk.accesses);
    EXPECT_EQ(total.misses, stk.misses);
    EXPECT_EQ(total.writebacks, stk.writebacks);

    EXPECT_EQ(total.accesses, cls.accesses);
    EXPECT_EQ(total.misses, cls.misses);
    EXPECT_EQ(total.writebacks, cls.writebacks);
  }
}

// --- AttrStackStream vs StackStream vs SetAssocCache -------------------------

TEST(AttrStack, RandomStreamsConserveOnPaperLadder) {
  const std::vector<cache::CacheConfig> ladder = cache::paper_ladder(64);
  ASSERT_EQ(ladder.size(), 24u);
  for (std::uint32_t seed : {7u, 99u, 12345u}) {
    SCOPED_TRACE(seed);
    expect_conservation(ladder, keyed_stream(30000, seed, 0x3FFFF, 11), 11);
  }
}

TEST(AttrStack, DegenerateGeometriesConserve) {
  // Single-set, direct-mapped, and tiny caches at an 8-byte block — the
  // geometries where off-by-one position/limit bugs would show first.
  const std::vector<cache::CacheConfig> cfgs = {
      {32, 8, 4},    // one set, fully associative
      {64, 8, 1},    // direct-mapped, 8 sets
      {128, 8, 2},   // 8 sets, 2-way
      {1024, 8, 4},  // 32 sets
  };
  for (std::uint32_t seed : {3u, 41u}) {
    SCOPED_TRACE(seed);
    expect_conservation(cfgs, keyed_stream(20000, seed, 0x1FFF, 5), 5);
  }
}

TEST(AttrStack, SingleKeyMatchesUnkeyedPerKeyStats) {
  // With one key the per-key stats *are* the totals.
  const std::vector<cache::CacheConfig> cfgs = {{8192, 64, 4}, {1024, 64, 1}};
  cache::AttrStackStream attr(cfgs, 1);
  cache::StackStream stack(cfgs, 0, 1);
  for (const KeyedRef& r : keyed_stream(25000, 77, 0xFFFF, 1)) {
    attr.access(r.addr, r.is_write, 0);
    stack.access(r.addr, r.is_write);
  }
  for (std::size_t c = 0; c < cfgs.size(); ++c) {
    const cache::CacheStats a = attr.stats_for(c, 0);
    const cache::CacheStats s = stack.stats_for(c);
    EXPECT_EQ(a.accesses, s.accesses);
    EXPECT_EQ(a.misses, s.misses);
    EXPECT_EQ(a.writebacks, s.writebacks);
  }
}

TEST(AttrStack, ReuseHistogramCountsEveryAccess) {
  const std::vector<cache::CacheConfig> cfgs = {{8192, 64, 4}};
  const std::uint32_t num_keys = 7;
  cache::AttrStackStream attr(cfgs, num_keys, /*rd_window=*/64);
  const std::vector<KeyedRef> refs = keyed_stream(10000, 5, 0x7FFF, num_keys);
  for (const KeyedRef& r : refs) attr.access(r.addr, r.is_write, r.key);
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < num_keys; ++k) {
    const std::uint64_t* h = attr.rd_hist(k);
    for (std::uint32_t b = 0; b < cache::AttrStackStream::kRdBuckets; ++b) {
      total += h[b];
    }
  }
  EXPECT_EQ(total, refs.size());
  EXPECT_EQ(cache::AttrStackStream::rd_bucket_floor(0), 0u);
  EXPECT_EQ(cache::AttrStackStream::rd_bucket_floor(1), 1u);
  EXPECT_EQ(cache::AttrStackStream::rd_bucket_floor(5), 16u);
}

// --- Workload conservation: report totals vs the measured ladder -------------

void expect_report_ties_out(const driver::RunResult& r) {
  ASSERT_NE(r.obs, nullptr);
  ASSERT_TRUE(r.obs->locality.has_value());
  const obs::LocalityReport& rep = *r.obs->locality;
  ASSERT_EQ(rep.configs.size(), r.cache.size());
  for (std::size_t c = 0; c < rep.configs.size(); ++c) {
    SCOPED_TRACE(rep.configs[c].name());
    // Match by geometry, not index, so the report stays valid even if the
    // ladder orders change independently.
    const driver::ConfigResult* measured = nullptr;
    for (const driver::ConfigResult& m : r.cache) {
      if (m.config.size_bytes == rep.configs[c].size_bytes &&
          m.config.assoc == rep.configs[c].assoc &&
          m.config.block_bytes == rep.configs[c].block_bytes) {
        measured = &m;
      }
    }
    ASSERT_NE(measured, nullptr);
    const cache::CacheStats it = rep.itotal(c);
    const cache::CacheStats dt = rep.dtotal(c);
    EXPECT_EQ(it.accesses, measured->icache.accesses);
    EXPECT_EQ(it.misses, measured->icache.misses);
    EXPECT_EQ(dt.accesses, measured->dcache.accesses);
    EXPECT_EQ(dt.misses, measured->dcache.misses);
    EXPECT_EQ(dt.writebacks, measured->dcache.writebacks);
  }
}

TEST(LocalityConservation, AllPaperProgramsBothBackendsAllConfigs) {
  for (programs::Workload& w : programs::paper_workloads(quick_scale())) {
    for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                              rt::BackendKind::ActiveMessages}) {
      SCOPED_TRACE(w.name + (b == rt::BackendKind::MessageDriven ? "/MD"
                                                                 : "/AM"));
      driver::RunOptions opts;
      opts.backend = b;
      opts.obs.locality = true;
      driver::RunResult r = driver::run_workload(w, opts);
      ASSERT_TRUE(r.ok()) << r.check_error;
      expect_report_ties_out(r);
    }
  }
}

TEST(LocalityConservation, ShardedMeasurementTiesOutToo) {
  const programs::Workload w = workload_by_name("qs");
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages}) {
    driver::RunOptions opts;
    opts.backend = b;
    opts.cache_workers = 4;  // shard the measured bank; collector is serial
    opts.obs.locality = true;
    driver::RunResult r = driver::run_workload(w, opts);
    ASSERT_TRUE(r.ok()) << r.check_error;
    expect_report_ties_out(r);
  }
}

// --- Zero-cost-when-off ------------------------------------------------------

TEST(LocalityZeroCost, MeasurementBitIdenticalWithLocalityOn) {
  const programs::Workload w = workload_by_name("mmt");
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages}) {
    driver::RunOptions plain;
    plain.backend = b;
    driver::RunOptions traced = plain;
    traced.obs.locality = true;

    const driver::RunResult a = driver::run_workload(w, plain);
    const driver::RunResult c = driver::run_workload(w, traced);
    ASSERT_EQ(a.status, c.status);
    EXPECT_EQ(a.halt_value, c.halt_value);
    EXPECT_EQ(a.instructions, c.instructions);
    EXPECT_EQ(a.gran.threads, c.gran.threads);
    EXPECT_EQ(a.gran.quanta, c.gran.quanta);
    EXPECT_EQ(a.gran.quantum_instrs, c.gran.quantum_instrs);
    ASSERT_EQ(a.cache.size(), c.cache.size());
    for (std::size_t i = 0; i < a.cache.size(); ++i) {
      SCOPED_TRACE(a.cache[i].config.name());
      EXPECT_EQ(a.cache[i].icache.accesses, c.cache[i].icache.accesses);
      EXPECT_EQ(a.cache[i].icache.misses, c.cache[i].icache.misses);
      EXPECT_EQ(a.cache[i].dcache.accesses, c.cache[i].dcache.accesses);
      EXPECT_EQ(a.cache[i].dcache.misses, c.cache[i].dcache.misses);
      EXPECT_EQ(a.cache[i].dcache.writebacks, c.cache[i].dcache.writebacks);
    }
    EXPECT_EQ(a.obs, nullptr);
    ASSERT_NE(c.obs, nullptr);
    EXPECT_TRUE(c.obs->locality.has_value());
  }
}

// --- Report queries, diff, exports -------------------------------------------

class LocalityReportFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const programs::Workload w = workload_by_name("qs");
    for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                              rt::BackendKind::ActiveMessages}) {
      driver::RunOptions opts;
      opts.backend = b;
      opts.with_cache = false;
      opts.obs.locality = true;
      opts.obs.timeline = true;
      driver::RunResult r = driver::run_workload(w, opts);
      ASSERT_TRUE(r.ok()) << r.check_error;
      (b == rt::BackendKind::MessageDriven ? md_ : am_) =
          new driver::RunResult(std::move(r));
    }
  }
  static void TearDownTestSuite() {
    delete md_;
    delete am_;
    md_ = nullptr;
    am_ = nullptr;
  }

  static const obs::LocalityReport& md() { return *md_->obs->locality; }
  static const obs::LocalityReport& am() { return *am_->obs->locality; }

  static driver::RunResult* md_;
  static driver::RunResult* am_;
};

driver::RunResult* LocalityReportFixture::md_ = nullptr;
driver::RunResult* LocalityReportFixture::am_ = nullptr;

TEST_F(LocalityReportFixture, ClassBreakdownSumsToDTotal) {
  const obs::LocalityReport& rep = md();
  std::uint64_t acc = 0;
  std::uint64_t miss = 0;
  std::uint64_t wb = 0;
  for (std::uint32_t c = 0; c < obs::kNumAccessClasses; ++c) {
    const auto ac = static_cast<obs::AccessClass>(c);
    acc += rep.class_accesses(ac);
    miss += rep.class_misses(ac, rep.headline);
    wb += rep.class_writebacks(ac, rep.headline);
  }
  const cache::CacheStats dt = rep.dtotal(rep.headline);
  EXPECT_EQ(acc, dt.accesses);
  EXPECT_EQ(miss, dt.misses);
  EXPECT_EQ(wb, dt.writebacks);
  // A TAM run touches frames and the message queues by construction.
  EXPECT_GT(rep.class_accesses(obs::AccessClass::Frame), 0u);
  EXPECT_GT(rep.class_accesses(obs::AccessClass::Queue), 0u);
}

TEST_F(LocalityReportFixture, MrcAndPercentilesAreSane) {
  const obs::LocalityReport& rep = md();
  // Headline must be the paper's 8K 4-way.
  EXPECT_EQ(rep.configs[rep.headline].size_bytes, 8u * 1024);
  EXPECT_EQ(rep.configs[rep.headline].assoc, 4u);
  for (std::uint32_t r = 0; r < rep.rows.size(); ++r) {
    if (rep.symbol_accesses(r) == 0) continue;
    for (double m : rep.symbol_mrc(r)) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
  const double p50 = rep.frame_rd_percentile(0.50);
  const double p90 = rep.frame_rd_percentile(0.90);
  const double p99 = rep.frame_rd_percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(rep.rd_window));
}

TEST_F(LocalityReportFixture, DiffConservesAndRanksByDelta) {
  const obs::LocalityDiff d =
      obs::LocalityReport::diff(md(), am(), md().headline);
  EXPECT_EQ(d.config.size_bytes, 8u * 1024);
  ASSERT_FALSE(d.entries.empty());
  std::uint64_t md_miss = 0;
  std::uint64_t am_miss = 0;
  for (std::size_t i = 0; i < d.entries.size(); ++i) {
    md_miss += d.entries[i].md_misses;
    am_miss += d.entries[i].am_misses;
    if (i > 0) {
      const auto mag = [](const obs::LocalityDiff::Entry& e) {
        const std::int64_t v = e.delta();
        return v < 0 ? -v : v;
      };
      EXPECT_LE(mag(d.entries[i]), mag(d.entries[i - 1]));
    }
  }
  // Every attributed miss appears in exactly one entry.
  EXPECT_EQ(md_miss, md().itotal(md().headline).misses +
                         md().dtotal(md().headline).misses);
  EXPECT_EQ(am_miss, am().itotal(am().headline).misses +
                         am().dtotal(am().headline).misses);
  std::ostringstream os;
  d.write_text(os);
  EXPECT_NE(os.str().find("MD vs AM locality diff"), std::string::npos);
}

TEST_F(LocalityReportFixture, CsvAndJsonExportsAreWellFormed) {
  std::ostringstream csv;
  md().write_csv(csv);
  EXPECT_EQ(csv.str().rfind("name,kind,cb,idx,stream,class,accesses", 0), 0u);
  // One miss column per config.
  const std::string header = csv.str().substr(0, csv.str().find('\n'));
  std::size_t cols = 0;
  for (char ch : header) cols += ch == ',' ? 1 : 0;
  EXPECT_EQ(cols, 8 + md().configs.size());

  std::ostringstream js;
  md().write_json(js);
  const json::Value doc = json::parse(js.str());
  EXPECT_EQ(doc.at("configs").as_array().size(), md().configs.size());
  EXPECT_EQ(doc.at("classes").as_array().size(),
            static_cast<std::size_t>(obs::kNumAccessClasses));
  EXPECT_FALSE(doc.at("rows").as_array().empty());
  EXPECT_FALSE(doc.at("series").as_array().empty());
}

TEST_F(LocalityReportFixture, ChromeTraceMergesCountersWithTimeline) {
  std::ostringstream os;
  obs::write_locality_chrome_trace(
      os, {{"qs / MD", &*md_->obs->timeline, &md()},
           {"qs / AM", nullptr, &am()}});
  const json::Value doc = json::parse(os.str());
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  int imiss_counters = 0;
  int dmiss_counters = 0;
  int slices = 0;
  for (const json::Value& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "C" && e.at("name").as_string() == "imiss (cum)") {
      ++imiss_counters;
    }
    if (ph == "C" && e.at("name").as_string() == "dmiss by class (cum)") {
      ++dmiss_counters;
    }
    if (ph == "X") ++slices;
  }
  EXPECT_GT(imiss_counters, 0);
  EXPECT_EQ(imiss_counters, dmiss_counters);
  EXPECT_GT(slices, 0);  // the MD run's timeline rode along
}

TEST_F(LocalityReportFixture, TextScorecardMentionsTheLadder) {
  std::ostringstream os;
  md().write_text(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Locality attribution (24 configs"), std::string::npos);
  EXPECT_NE(s.find("frame reuse distance"), std::string::npos);
  EXPECT_NE(s.find("top symbols by misses"), std::string::npos);
}

}  // namespace
