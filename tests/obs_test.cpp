// jtam::obs — the observability layer.
//
// The central contract: collectors observe the trace stream without
// perturbing anything measured.  A run with every collector attached must
// produce a RunResult bit-identical to a plain run, the profiler's totals
// must tie out against the measured access counts and cache ladder, the
// distribution histograms must tie out against the granularity counters,
// and the timeline export must be valid Chrome trace-event JSON.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/trace_buffer.h"
#include "support/error.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "programs/registry.h"
#include "support/json.h"
#include "tamc/symbols.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

programs::Scale quick_scale() {
  return programs::Scale{12, 60, 10, 10, 12, 2, 40};
}

programs::Workload workload_by_name(const std::string& name) {
  for (programs::Workload& w : programs::paper_workloads(quick_scale())) {
    if (w.name == name) return w;
  }
  ADD_FAILURE() << "no workload named " << name;
  return {};
}

void expect_identical_measurement(const driver::RunResult& a,
                                  const driver::RunResult& b) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.check_error, b.check_error);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.gran.threads, b.gran.threads);
  EXPECT_EQ(a.gran.inlets, b.gran.inlets);
  EXPECT_EQ(a.gran.quanta, b.gran.quanta);
  EXPECT_EQ(a.gran.activations, b.gran.activations);
  EXPECT_EQ(a.gran.fp_calls, b.gran.fp_calls);
  EXPECT_EQ(a.gran.thread_instrs, b.gran.thread_instrs);
  EXPECT_EQ(a.gran.inlet_instrs, b.gran.inlet_instrs);
  EXPECT_EQ(a.gran.sched_instrs, b.gran.sched_instrs);
  EXPECT_EQ(a.gran.handler_instrs, b.gran.handler_instrs);
  EXPECT_EQ(a.gran.quantum_instrs, b.gran.quantum_instrs);
  for (int l = 0; l < metrics::kNumLevels; ++l) {
    for (int rg = 0; rg < metrics::kNumRegions; ++rg) {
      EXPECT_EQ(a.counts.fetch[l][rg], b.counts.fetch[l][rg]);
      EXPECT_EQ(a.counts.read[l][rg], b.counts.read[l][rg]);
      EXPECT_EQ(a.counts.write[l][rg], b.counts.write[l][rg]);
    }
  }
  EXPECT_EQ(a.queue_high_water[0], b.queue_high_water[0]);
  EXPECT_EQ(a.queue_high_water[1], b.queue_high_water[1]);
  ASSERT_EQ(a.cache.size(), b.cache.size());
  for (std::size_t i = 0; i < a.cache.size(); ++i) {
    SCOPED_TRACE(a.cache[i].config.name());
    EXPECT_EQ(a.cache[i].icache.accesses, b.cache[i].icache.accesses);
    EXPECT_EQ(a.cache[i].icache.misses, b.cache[i].icache.misses);
    EXPECT_EQ(a.cache[i].dcache.accesses, b.cache[i].dcache.accesses);
    EXPECT_EQ(a.cache[i].dcache.misses, b.cache[i].dcache.misses);
    EXPECT_EQ(a.cache[i].dcache.writebacks, b.cache[i].dcache.writebacks);
  }
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, EmptyIsAllZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
}

TEST(Histogram, ExactMoments) {
  obs::Histogram h;
  for (std::uint64_t v : {5u, 1u, 9u, 0u, 1000u}) h.add(v);
  h.add(7, /*weight=*/3);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 5u + 1 + 9 + 0 + 1000 + 3 * 7);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 8.0);
}

TEST(Histogram, PercentilesAreOrderedAndBounded) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_GE(h.p50(), static_cast<double>(h.min()));
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), static_cast<double>(h.max()));
  // With a uniform 1..1000 sample the bucketed p50 must land in the right
  // neighbourhood (the crossing bucket is [256, 511]).
  EXPECT_GE(h.p50(), 256.0);
  EXPECT_LE(h.p50(), 512.0);
  EXPECT_EQ(h.percentile(1.0), 1000.0);
}

TEST(Histogram, BucketRanges) {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  obs::Histogram::bucket_range(0, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
  obs::Histogram::bucket_range(1, &lo, &hi);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 1u);
  obs::Histogram::bucket_range(5, &lo, &hi);
  EXPECT_EQ(lo, 16u);
  EXPECT_EQ(hi, 31u);
}

// --- support/json ------------------------------------------------------------

TEST(Json, ParsesNestedDocument) {
  const json::Value v = json::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"s": "hi\nthere", "t": true, "n": null}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_EQ(v.at("b").at("s").as_string(), "hi\nthere");
  EXPECT_TRUE(v.at("b").at("t").as_bool());
  EXPECT_TRUE(v.at("b").at("n").is_null());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zzz"));
}

TEST(Json, ParsesUnicodeEscapes) {
  EXPECT_EQ(json::parse(R"("A\u00e9")").as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), Error);
  EXPECT_THROW(json::parse("[1,]"), Error);
  EXPECT_THROW(json::parse("{} trailing"), Error);
  EXPECT_THROW(json::parse(""), Error);
}

TEST(Json, EscapeRoundTrips) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const json::Value v = json::parse("\"" + json::escape(nasty) + "\"");
  EXPECT_EQ(v.as_string(), nasty);
}

// --- tamc::SymbolMap ---------------------------------------------------------

TEST(SymbolMap, CoversCompiledProgramWithSortedSpans) {
  const programs::Workload w = workload_by_name("qs");
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::PreparedRun prep = driver::prepare_run(w, opts);
  const tamc::SymbolMap map = tamc::SymbolMap::from(prep.compiled);
  ASSERT_FALSE(map.empty());

  bool saw_thread = false;
  bool saw_inlet = false;
  bool saw_kernel = false;
  for (std::size_t i = 0; i < map.spans().size(); ++i) {
    const tamc::SymbolSpan& s = map.spans()[i];
    EXPECT_LT(s.begin, s.end) << s.name;
    if (i > 0) {
      EXPECT_LE(map.spans()[i - 1].end, s.begin) << s.name;
    }
    if (s.kind == tamc::SymbolKind::Thread) {
      saw_thread = true;
      EXPECT_GE(s.cb, 0) << s.name;
      EXPECT_GE(s.idx, 0) << s.name;
    }
    if (s.kind == tamc::SymbolKind::Inlet) saw_inlet = true;
    if (s.kind == tamc::SymbolKind::Kernel) saw_kernel = true;
    // Every address inside the span resolves back to it.
    EXPECT_EQ(map.find(s.begin), &s);
    EXPECT_EQ(map.find(s.end - 4), &s);
  }
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_inlet);
  EXPECT_TRUE(saw_kernel);
  EXPECT_EQ(map.find(0xFFFFFCu), nullptr);  // far outside any code section
}

// --- the central contract ----------------------------------------------------

TEST(Obs, CollectorsDoNotPerturbMeasurement) {
  const programs::Workload w = workload_by_name("qs");
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages}) {
    SCOPED_TRACE(rt::backend_name(b));
    driver::RunOptions opts;
    opts.backend = b;
    const driver::RunResult plain = driver::run_workload(w, opts);
    ASSERT_TRUE(plain.ok()) << plain.check_error;
    EXPECT_EQ(plain.obs, nullptr);

    opts.obs = obs::Options::all();
    const driver::RunResult observed = driver::run_workload(w, opts);
    ASSERT_NE(observed.obs, nullptr);
    expect_identical_measurement(plain, observed);
  }
}

TEST(Obs, SeedPerEventPathProducesNoReport) {
  const programs::Workload w = workload_by_name("paraffins");
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.batched_trace = false;
  opts.obs = obs::Options::all();
  const driver::RunResult r = driver::run_workload(w, opts);
  ASSERT_TRUE(r.ok()) << r.check_error;
  EXPECT_EQ(r.obs, nullptr);
}

TEST(Obs, ProfileTiesOutAgainstMeasuredCountsAndCaches) {
  const programs::Workload w = workload_by_name("qs");
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages}) {
    SCOPED_TRACE(rt::backend_name(b));
    driver::RunOptions opts;
    opts.backend = b;
    opts.obs.profile = true;  // default geometry: the paper's 8K 4-way
    const driver::RunResult r = driver::run_workload(w, opts);
    ASSERT_TRUE(r.ok()) << r.check_error;
    ASSERT_NE(r.obs, nullptr);
    ASSERT_TRUE(r.obs->profile.has_value());
    const obs::Profile& p = *r.obs->profile;

    // Attribution is exhaustive: row totals equal the measured counts.
    EXPECT_EQ(p.total_fetches, r.counts.total_fetches());
    EXPECT_EQ(p.total_fetches, r.instructions);
    EXPECT_EQ(p.total_reads, r.counts.total_reads());
    EXPECT_EQ(p.total_writes, r.counts.total_writes());

    // The profiler's private caches replay the same streams the measured
    // CacheBank consumed, so per-config miss totals are bit-identical.
    ASSERT_EQ(p.caches.size(), 1u);
    std::uint64_t imiss = 0;
    std::uint64_t dmiss = 0;
    std::uint64_t fetches = 0;
    for (const obs::ProfileRow& row : p.rows) {
      imiss += row.imisses[0];
      dmiss += row.dmisses[0];
      fetches += row.fetches;
    }
    EXPECT_EQ(fetches, p.total_fetches);
    const driver::ConfigResult& measured = r.config(8192, 4);
    EXPECT_EQ(imiss, measured.icache.misses);
    EXPECT_EQ(dmiss, measured.dcache.misses);

    // User code shows up under its own names.
    bool saw_user = false;
    for (const obs::ProfileRow& row : p.rows) {
      if (row.kind == tamc::SymbolKind::Thread ||
          row.kind == tamc::SymbolKind::Inlet) {
        saw_user = row.fetches > 0;
        if (saw_user) break;
      }
    }
    EXPECT_TRUE(saw_user);
  }
}

TEST(Obs, DistributionsTieOutAgainstGranularity) {
  const programs::Workload w = workload_by_name("qs");
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages}) {
    SCOPED_TRACE(rt::backend_name(b));
    driver::RunOptions opts;
    opts.backend = b;
    opts.with_cache = false;
    opts.obs.histograms = true;
    const driver::RunResult r = driver::run_workload(w, opts);
    ASSERT_TRUE(r.ok()) << r.check_error;
    ASSERT_NE(r.obs, nullptr);
    ASSERT_TRUE(r.obs->distributions.has_value());
    const obs::Distributions& d = *r.obs->distributions;

    EXPECT_EQ(d.quantum_len.count(), r.gran.quanta);
    EXPECT_EQ(d.quantum_len.sum(), r.gran.quantum_instrs);
    EXPECT_EQ(d.tpq.count(), r.gran.quanta);
    EXPECT_EQ(d.tpq.sum(), r.gran.threads);
    EXPECT_EQ(d.ipt.count(), r.gran.threads);
    EXPECT_EQ(d.ipt.sum(), r.gran.thread_instrs);
    EXPECT_EQ(d.inlet_len.count(), r.gran.inlets);
    EXPECT_EQ(d.inlet_len.sum(), r.gran.inlet_instrs);

    // The histogram means are the paper's Table 2 columns.
    if (r.gran.quanta > 0) {
      EXPECT_DOUBLE_EQ(d.quantum_len.mean(), r.gran.ipq());
      EXPECT_DOUBLE_EQ(d.tpq.mean(), r.gran.tpq());
    }
    if (r.gran.threads > 0) {
      EXPECT_DOUBLE_EQ(d.ipt.mean(), r.gran.ipt());
    }

    // Dispatch samples exist and every sampled queue held >= 1 record.
    const std::uint64_t samples =
        d.queue_depth[0].count() + d.queue_depth[1].count();
    EXPECT_GT(samples, 0u);
    for (int l = 0; l < 2; ++l) {
      if (d.queue_depth[l].count() > 0) {
        EXPECT_GE(d.queue_depth[l].min(), 1u);
        EXPECT_GT(d.queue_bytes[l].min(), 0u);
      }
    }
  }
}

TEST(Obs, PipelineMetricsCountEveryEvent) {
  const programs::Workload w = workload_by_name("paraffins");
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.obs.pipeline_metrics = true;
  const driver::RunResult r = driver::run_workload(w, opts);
  ASSERT_TRUE(r.ok()) << r.check_error;
  ASSERT_NE(r.obs, nullptr);
  ASSERT_TRUE(r.obs->pipeline.has_value());
  const obs::PipelineMetrics& pm = *r.obs->pipeline;
  EXPECT_GT(pm.blocks, 0u);
  EXPECT_EQ(pm.fetch_events, r.instructions);
  EXPECT_EQ(pm.data_events,
            r.counts.total_reads() + r.counts.total_writes());
  EXPECT_GT(pm.marks, 0u);
  EXPECT_GE(pm.drain_seconds, 0.0);
  EXPECT_GE(pm.max_block_seconds, 0.0);
}

// --- timeline ----------------------------------------------------------------

TEST(Obs, TimelineExportIsValidChromeTraceJson) {
  const programs::Workload w = workload_by_name("qs");
  std::vector<driver::RunResult> results;
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages}) {
    driver::RunOptions opts;
    opts.backend = b;
    opts.with_cache = false;
    opts.obs.timeline = true;
    results.push_back(driver::run_workload(w, opts));
    ASSERT_TRUE(results.back().ok()) << results.back().check_error;
    ASSERT_NE(results.back().obs, nullptr);
    ASSERT_TRUE(results.back().obs->timeline.has_value());
  }

  std::ostringstream os;
  obs::write_chrome_trace(os, {{"qs / MD", &*results[0].obs->timeline},
                               {"qs / AM", &*results[1].obs->timeline}});
  const json::Value doc = json::parse(os.str());

  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  int slices = 0;
  int counters = 0;
  int instants = 0;
  int metas = 0;
  std::uint64_t max_pid = 0;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_FALSE(e.at("name").as_string().empty());
    const double pid = e.at("pid").as_number();
    EXPECT_GE(pid, 1.0);
    max_pid = std::max(max_pid, static_cast<std::uint64_t>(pid));
    if (ph == "X") {
      ++slices;
      EXPECT_GE(e.at("ts").as_number(), 0.0);
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_GE(e.at("tid").as_number(), 0.0);
      EXPECT_LE(e.at("tid").as_number(), 2.0);
      EXPECT_TRUE(e.at("args").has("frame"));
    } else if (ph == "C") {
      ++counters;
      EXPECT_TRUE(e.at("args").has("records"));
      EXPECT_TRUE(e.at("args").has("bytes"));
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").as_string(), "t");
    } else if (ph == "M") {
      ++metas;
    } else {
      ADD_FAILURE() << "unexpected event phase '" << ph << "'";
    }
  }
  EXPECT_EQ(max_pid, 2u);       // both runs present as separate processes
  EXPECT_GT(slices, 0);         // thread/inlet/quantum slices
  EXPECT_GT(counters, 0);       // queue occupancy samples
  EXPECT_GT(instants, 0);       // AM Activate marks
  EXPECT_GE(metas, 8);          // process + track names for both pids

  // Slice timestamps stay within the run.
  const obs::Timeline& md = *results[0].obs->timeline;
  EXPECT_EQ(md.dropped, 0u);
  for (const auto& s : md.slices) {
    EXPECT_LE(s.ts + s.dur, md.total_instructions);
  }
}

TEST(Obs, TimelineEventCapIsHonored) {
  const programs::Workload w = workload_by_name("qs");
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.obs.timeline = true;
  opts.obs.timeline_max_events = 16;
  const driver::RunResult r = driver::run_workload(w, opts);
  ASSERT_TRUE(r.ok()) << r.check_error;
  const obs::Timeline& tl = *r.obs->timeline;
  EXPECT_LE(tl.recorded_events(), 16u);
  EXPECT_GT(tl.dropped, 0u);
}

// --- SinkReplay ordering caveat ----------------------------------------------

// The batched pipeline's SinkReplay adapter preserves the fetch/mark
// interleaving and the relative order of data accesses, but NOT the
// interleaving of data accesses with fetches (data replays after the
// block's fetches).  examples/scheduling_trace.cpp used to rely on
// set_sink for exactly this reason; now that it uses the timeline
// exporter, this test pins the caveat down so the difference stays
// documented and intentional.
struct RecordedEvent {
  enum Type : std::uint8_t { Fetch, Read, Write, Mark } type;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint8_t level = 0;
  bool operator==(const RecordedEvent&) const = default;
};

class RecordingSink final : public mdp::TraceSink {
 public:
  void on_fetch(mem::Addr a, mdp::Priority p) override {
    events.push_back({RecordedEvent::Fetch, a, 0,
                      static_cast<std::uint8_t>(p)});
  }
  void on_read(mem::Addr a, mdp::Priority p) override {
    events.push_back({RecordedEvent::Read, a, 0,
                      static_cast<std::uint8_t>(p)});
  }
  void on_write(mem::Addr a, mdp::Priority p) override {
    events.push_back({RecordedEvent::Write, a, 0,
                      static_cast<std::uint8_t>(p)});
  }
  void on_mark(mdp::MarkKind k, std::uint32_t aux,
               mdp::Priority p) override {
    events.push_back({RecordedEvent::Mark, static_cast<std::uint32_t>(k),
                      aux, static_cast<std::uint8_t>(p)});
  }
  std::vector<RecordedEvent> events;
};

std::vector<RecordedEvent> filter(const std::vector<RecordedEvent>& in,
                                  bool data) {
  std::vector<RecordedEvent> out;
  for (const RecordedEvent& e : in) {
    const bool is_data =
        e.type == RecordedEvent::Read || e.type == RecordedEvent::Write;
    if (is_data == data) out.push_back(e);
  }
  return out;
}

TEST(SinkReplay, PreservesFetchMarkAndDataOrderButNotTheirInterleaving) {
  const programs::Workload w = workload_by_name("paraffins");
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.with_cache = false;

  // Exact path: one callback per event straight from the machine.
  RecordingSink exact;
  {
    driver::PreparedRun prep = driver::prepare_run(w, opts);
    prep.machine->set_sink(&exact);
    ASSERT_EQ(prep.machine->run(), mdp::RunStatus::Halted);
  }

  // Batched path: the same run replayed through SinkReplay.
  RecordingSink replayed;
  {
    driver::PreparedRun prep = driver::prepare_run(w, opts);
    driver::TracePipeline pipe;
    driver::SinkReplay replay(&replayed);
    pipe.add(&replay);
    mdp::TraceBuffer buf(&pipe);
    prep.machine->set_trace_buffer(&buf);
    ASSERT_EQ(prep.machine->run(), mdp::RunStatus::Halted);
    buf.flush();
  }

  // Same events overall...
  ASSERT_EQ(exact.events.size(), replayed.events.size());
  // ...with the fetch/mark interleaving and the data order each exact...
  EXPECT_EQ(filter(exact.events, /*data=*/false),
            filter(replayed.events, /*data=*/false));
  EXPECT_EQ(filter(exact.events, /*data=*/true),
            filter(replayed.events, /*data=*/true));
  // ...but the interleaving of data with fetches is NOT preserved: within
  // each block the fetches replay first.  Consumers that need the full
  // order must stay on Machine::set_sink (or use Mark::data_pos as the
  // obs profiler does).
  EXPECT_NE(exact.events, replayed.events);
}

// --- queue high-water marks --------------------------------------------------

TEST(QueueHighWater, BothPriorityLevelsAreTracked) {
  const programs::Workload w = workload_by_name("qs");

  // MD delivers user messages at low priority, AM at high: the respective
  // queue must show occupancy, and the measurement survives either path.
  driver::RunOptions md;
  md.backend = rt::BackendKind::MessageDriven;
  md.with_cache = false;
  const driver::RunResult rmd = driver::run_workload(w, md);
  ASSERT_TRUE(rmd.ok()) << rmd.check_error;
  EXPECT_GT(rmd.queue_high_water[0], 0u);

  driver::RunOptions am;
  am.backend = rt::BackendKind::ActiveMessages;
  am.with_cache = false;
  const driver::RunResult ram = driver::run_workload(w, am);
  ASSERT_TRUE(ram.ok()) << ram.check_error;
  EXPECT_GT(ram.queue_high_water[1], 0u);

  // High water never exceeds the hardware queue.
  for (const driver::RunResult* r : {&rmd, &ram}) {
    EXPECT_LE(r->queue_high_water[0], mem::kQueueBytes);
    EXPECT_LE(r->queue_high_water[1], mem::kQueueBytes);
  }
}

TEST(QueueHighWater, HostInjectionRaisesTheMark) {
  const programs::Workload w = workload_by_name("qs");
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::PreparedRun prep = driver::prepare_run(w, opts);

  const std::uint32_t msg[3] = {0, 0, 0};
  for (mdp::Priority p : {mdp::Priority::Low, mdp::Priority::High}) {
    const std::uint32_t before = prep.machine->queue_high_water(p);
    prep.machine->inject(p, msg);
    EXPECT_GE(prep.machine->queue_high_water(p),
              before + sizeof(msg));
  }
}

}  // namespace
