// Figure 4 — "The ratio of the total cycles taken in the flat [MD]
// implementation vs. the direct [AM] implementation for separate 4-way
// set-associative data and instruction caches of varying sizes", one curve
// per program plus the geometric mean, at miss penalties 12/24/48.
//
// Expected shape: curves order by granularity — mmt (finest) highest,
// selection sort lowest; raising the penalty lifts the fine-grained curves
// toward (and in the paper past) 1.0 at medium cache sizes.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  driver::RunOptions opts;
  opts.engine = args.engine;
  opts.dispatch = args.dispatch;
  const auto pairs = bench::run_all(args.scale, opts);

  for (std::uint32_t penalty : cache::paper_miss_penalties()) {
    std::vector<driver::Series> series;
    for (const driver::BackendPair& p : pairs) {
      driver::Series s;
      s.name = p.md.workload;
      for (std::uint32_t size : cache::paper_cache_sizes()) {
        s.values.push_back(p.ratio(size, 4, penalty));
      }
      series.push_back(std::move(s));
    }
    driver::Series mean;
    mean.name = "geomean";
    for (std::uint32_t size : cache::paper_cache_sizes()) {
      mean.values.push_back(bench::ratio_geomean(pairs, size, 4, penalty));
    }
    series.push_back(std::move(mean));
    driver::print_ratio_table(
        std::cout,
        "Figure 4 (4-way set-associative, miss = " +
            std::to_string(penalty) + " cycles): MD/AM per program",
        bench::size_labels(), series);
  }
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
