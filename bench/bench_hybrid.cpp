// §2.4 extension — the combined approach the paper cites:
//
// "Another variation is to combine the two approaches, using the
// message-driven approach for short threads and the Active Messages
// approach for long threads, as is done with Optimistic Active Messages
// [KWW+94].  In this study, however, our goal is to understand the
// differences in behavior of the two pure systems."
//
// This bench explores the variation the paper set aside: handler-safe
// thread chains execute directly at high priority (message-driven style),
// everything else through the AM scheduling hierarchy.  Reported against
// both pure systems.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);

  text::Table t;
  t.header({"Program", "MD instr", "AM instr", "OAM instr", "OAM/MD",
            "OAM cycles@24 / MD", "/ AM"});
  for (const programs::Workload& w : programs::paper_workloads(args.scale)) {
    std::cerr << "  running " << w.name << " ...\n";
    driver::RunOptions opts;
    opts.backend = rt::BackendKind::MessageDriven;
    driver::RunResult md = driver::run_workload(w, opts);
    opts.backend = rt::BackendKind::ActiveMessages;
    driver::RunResult am = driver::run_workload(w, opts);
    opts.backend = rt::BackendKind::Hybrid;
    driver::RunResult oam = driver::run_workload(w, opts);
    driver::require_ok({&md, &am, &oam});
    const double c_md = static_cast<double>(md.cycles(8192, 4, 24));
    const double c_am = static_cast<double>(am.cycles(8192, 4, 24));
    const double c_oam = static_cast<double>(oam.cycles(8192, 4, 24));
    t.row({w.name, text::with_commas(md.instructions),
           text::with_commas(am.instructions),
           text::with_commas(oam.instructions),
           text::fixed(static_cast<double>(oam.instructions) /
                           md.instructions,
                       2),
           text::fixed(c_oam / c_md, 2), text::fixed(c_oam / c_am, 2)});
  }
  t.print(std::cout);
  std::cout << "\nThe hybrid should land between the pure systems: close "
               "to MD's instruction counts\nwhere handler-safe chains "
               "dominate, falling back to AM costs elsewhere.\n";
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
