// Table 2 — "A comparison of threads per quantum (TPQ), instructions per
// thread (IPT), and instructions per quantum (IPQ) for the Message-Driven
// (MD) and Active Messages (AM) implementations.  The last columns show the
// ratios of the cycles taken under the MD and AM implementations in
// 8192-byte 4-way set-associative caches with varying miss costs."
//
// Expected shape (not absolute values): TPQ increases down the program
// list, AM's TPQ/IPQ are >= MD's, and the MD/AM cycle ratio falls as TPQ
// rises (finest-grained programs favour AM; coarse ones favour MD).

#include <iostream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "support/text.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  programs::Scale scale;
  if (argc > 1 && std::string(argv[1]) == "--quick") {
    scale = programs::Scale{12, 60, 10, 10, 12, 2, 40};
  }

  std::cout << "Table 2: granularity and cycle ratios (8K 4-way, 64B "
               "blocks)\n\n";
  text::Table t;
  t.header({"Program", "TPQ MD", "TPQ AM", "IPT MD", "IPT AM", "IPQ MD",
            "IPQ AM", "MD/AM @12", "@24", "@48"});

  driver::RunOptions opts;
  for (const programs::Workload& w : programs::paper_workloads(scale)) {
    driver::BackendPair p = driver::run_both(w, opts);
    driver::require_ok({&p.md, &p.am});
    t.row({w.name, text::fixed(p.md.gran.tpq(), 1),
           text::fixed(p.am.gran.tpq(), 1), text::fixed(p.md.gran.ipt(), 1),
           text::fixed(p.am.gran.ipt(), 1), text::fixed(p.md.gran.ipq(), 0),
           text::fixed(p.am.gran.ipq(), 0),
           text::fixed(p.ratio(8192, 4, 12), 2),
           text::fixed(p.ratio(8192, 4, 24), 2),
           text::fixed(p.ratio(8192, 4, 48), 2)});
    std::cerr << "  [" << w.name << "] MD "
              << text::with_commas(p.md.instructions) << " instr, AM "
              << text::with_commas(p.am.instructions) << " instr\n";
  }
  t.print(std::cout);
  std::cout << "\nPaper (J-Machine, 1995): TPQ rises down the list; AM >= "
               "MD per program;\nMD/AM cycle ratio falls from ~1.0-1.5 "
               "(mmt) to ~0.6 (ss).\n";
  return 0;
}
