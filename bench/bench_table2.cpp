// Table 2 — "A comparison of threads per quantum (TPQ), instructions per
// thread (IPT), and instructions per quantum (IPQ) for the Message-Driven
// (MD) and Active Messages (AM) implementations.  The last columns show the
// ratios of the cycles taken under the MD and AM implementations in
// 8192-byte 4-way set-associative caches with varying miss costs."
//
// Expected shape (not absolute values): TPQ increases down the program
// list, AM's TPQ/IPQ are >= MD's, and the MD/AM cycle ratio falls as TPQ
// rises (finest-grained programs favour AM; coarse ones favour MD).
//
// --locality adds a per-run locality scorecard (per-symbol miss-ratio
// curves over the whole 24-config ladder, frame/heap/queue/global access
// breakdown) and an MD vs AM per-symbol diff per workload; pair it with
// --out to keep the table's stdout metric block clean.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);

  bench::Stopwatch clock;
  driver::RunOptions opts;
  opts.engine = args.engine;
  opts.dispatch = args.dispatch;
  const auto pairs = bench::run_all(args.scale, opts);
  const double wall = clock.seconds();

  std::cout << "Table 2: granularity and cycle ratios (8K 4-way, 64B "
               "blocks)\n\n";
  text::Table t;
  t.header({"Program", "TPQ MD", "TPQ AM", "IPT MD", "IPT AM", "IPQ MD",
            "IPQ AM", "MD/AM @12", "@24", "@48"});

  std::vector<std::pair<std::string, double>> metrics;
  for (const driver::BackendPair& p : pairs) {
    const std::string& w = p.md.workload;
    t.row({w, text::fixed(p.md.gran.tpq(), 1),
           text::fixed(p.am.gran.tpq(), 1), text::fixed(p.md.gran.ipt(), 1),
           text::fixed(p.am.gran.ipt(), 1), text::fixed(p.md.gran.ipq(), 0),
           text::fixed(p.am.gran.ipq(), 0),
           text::fixed(p.ratio(8192, 4, 12), 2),
           text::fixed(p.ratio(8192, 4, 24), 2),
           text::fixed(p.ratio(8192, 4, 48), 2)});
    std::cerr << "  [" << w << "] MD "
              << text::with_commas(p.md.instructions) << " instr, AM "
              << text::with_commas(p.am.instructions) << " instr\n";
    metrics.emplace_back(w + ".md_instructions",
                         static_cast<double>(p.md.instructions));
    metrics.emplace_back(w + ".am_instructions",
                         static_cast<double>(p.am.instructions));
    metrics.emplace_back(
        w + ".md_cycles_8K_4way_p24",
        static_cast<double>(p.md.cycles(8192, 4, 24)));
    metrics.emplace_back(
        w + ".am_cycles_8K_4way_p24",
        static_cast<double>(p.am.cycles(8192, 4, 24)));
    for (std::uint32_t penalty : cache::paper_miss_penalties()) {
      metrics.emplace_back(w + ".ratio_8K_4way_p" + std::to_string(penalty),
                           p.ratio(8192, 4, penalty));
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper (J-Machine, 1995): TPQ rises down the list; AM >= "
               "MD per program;\nMD/AM cycle ratio falls from ~1.0-1.5 "
               "(mmt) to ~0.6 (ss).\n";

  std::cerr << "  simulation wall-clock: " << text::fixed(wall, 3) << " s\n";
  bench::write_json(args.json_path, "bench_table2", wall, metrics);
  bench::maybe_export_obs(args.obs, args.scale, opts);
  return 0;
}
