// Figure 5 — per-program MD/AM cycle ratios for separate *direct-mapped*
// data and instruction caches, miss penalties 12/24/48.
//
// Expected shape: ratios sit below the 4-way curves of Figure 4 — the MD
// implementation's control locality gives it better instruction-cache
// behaviour where conflicts matter ("the MD implementation is especially
// strong in direct-mapped caches").  The dip at small-to-medium sizes
// reflects relatively poor AM instruction-cache performance.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  driver::RunOptions opts;
  opts.engine = args.engine;
  opts.dispatch = args.dispatch;
  const auto pairs = bench::run_all(args.scale, opts);

  for (std::uint32_t penalty : cache::paper_miss_penalties()) {
    std::vector<driver::Series> series;
    for (const driver::BackendPair& p : pairs) {
      driver::Series s;
      s.name = p.md.workload;
      for (std::uint32_t size : cache::paper_cache_sizes()) {
        s.values.push_back(p.ratio(size, 1, penalty));
      }
      series.push_back(std::move(s));
    }
    driver::Series mean;
    mean.name = "geomean";
    for (std::uint32_t size : cache::paper_cache_sizes()) {
      mean.values.push_back(bench::ratio_geomean(pairs, size, 1, penalty));
    }
    series.push_back(std::move(mean));
    driver::print_ratio_table(
        std::cout,
        "Figure 5 (direct-mapped, miss = " + std::to_string(penalty) +
            " cycles): MD/AM per program",
        bench::size_labels(), series);
  }
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
