// Write-back cost ablation.
//
// The paper's cycle model charges the miss penalty only ("instructions were
// assumed to uniformly take one cycle, not counting memory access time"),
// though its caches are write-back.  Dirty evictions also consume memory
// bandwidth; since the AM implementation writes more (frame stores for
// every message operand, RCV bookkeeping), charging write-backs should
// favour MD further.  This bench quantifies that at 8K 4-way, miss = 24.

#include <cmath>

#include "bench_common.h"
#include "metrics/cycles.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  const driver::RunOptions opts;
  const auto pairs = bench::run_all(args.scale, opts);

  text::Table t;
  t.header({"Program", "MD writebacks", "AM writebacks", "MD/AM wb=0",
            "wb=6", "wb=12", "wb=24"});
  for (const driver::BackendPair& p : pairs) {
    const auto& cm = p.md.config(8192, 4);
    const auto& ca = p.am.config(8192, 4);
    std::vector<std::string> row{p.md.workload,
                                 text::with_commas(cm.dcache.writebacks),
                                 text::with_commas(ca.dcache.writebacks)};
    for (std::uint32_t wb : {0u, 6u, 12u, 24u}) {
      const double md = static_cast<double>(metrics::total_cycles_wb(
          p.md.instructions, cm.icache, cm.dcache, 24, wb));
      const double am = static_cast<double>(metrics::total_cycles_wb(
          p.am.instructions, ca.icache, ca.dcache, 24, wb));
      row.push_back(text::fixed(md / am, 3));
    }
    t.row(row);
  }
  t.print(std::cout);
  std::cout << "\nCharging dirty evictions moves the ratio further toward "
               "MD (it writes less),\nstrengthening the paper's conclusion "
               "under a more complete memory model.\n";
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
