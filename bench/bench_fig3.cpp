// Figure 3 — "The geometric means of the ratios of the total time taken for
// the set of test programs in the MD to the AM implementation given
// separate data and instruction caches", for miss penalties 12/24/48 and
// associativities 1/2/4 over cache sizes 1K-128K.
//
// Expected shape: the ratio is lowest (MD strongest) at small and at large
// caches, with the AM implementation closing the gap at medium sizes and
// high penalties; direct-mapped caches favour MD ("there is little
// difference between the ratios for 2- and 4-way ... but there is for
// direct-mapped").

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const programs::Scale scale = bench::scale_from_args(argc, argv);
  const driver::RunOptions opts;
  const auto pairs = bench::run_all(scale, opts);

  for (std::uint32_t penalty : cache::paper_miss_penalties()) {
    std::vector<driver::Series> series;
    for (std::uint32_t assoc : cache::paper_associativities()) {
      driver::Series s;
      s.name = std::to_string(assoc) + "-way";
      for (std::uint32_t size : cache::paper_cache_sizes()) {
        s.values.push_back(
            bench::ratio_geomean(pairs, size, assoc, penalty));
      }
      series.push_back(std::move(s));
    }
    driver::print_ratio_table(
        std::cout,
        "Figure 3 (miss = " + std::to_string(penalty) +
            " cycles): geomean MD/AM cycle ratio vs cache size",
        bench::size_labels(), series);
  }
  return 0;
}
