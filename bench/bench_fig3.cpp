// Figure 3 — "The geometric means of the ratios of the total time taken for
// the set of test programs in the MD to the AM implementation given
// separate data and instruction caches", for miss penalties 12/24/48 and
// associativities 1/2/4 over cache sizes 1K-128K.
//
// Expected shape: the ratio is lowest (MD strongest) at small and at large
// caches, with the AM implementation closing the gap at medium sizes and
// high penalties; direct-mapped caches favour MD ("there is little
// difference between the ratios for 2- and 4-way ... but there is for
// direct-mapped").

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const programs::Scale scale = bench::scale_from_args(argc, argv);
  const bench::ObsArgs obs_args = bench::obs_args_from_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);

  bench::Stopwatch clock;
  const driver::RunOptions opts;
  const auto pairs = bench::run_all(scale, opts);
  const double wall = clock.seconds();

  std::vector<std::pair<std::string, double>> metrics;
  for (std::uint32_t penalty : cache::paper_miss_penalties()) {
    std::vector<driver::Series> series;
    for (std::uint32_t assoc : cache::paper_associativities()) {
      driver::Series s;
      s.name = std::to_string(assoc) + "-way";
      for (std::uint32_t size : cache::paper_cache_sizes()) {
        const double g = bench::ratio_geomean(pairs, size, assoc, penalty);
        s.values.push_back(g);
        metrics.emplace_back("geomean_p" + std::to_string(penalty) + "_a" +
                                 std::to_string(assoc) + "_" +
                                 std::to_string(size / 1024) + "K",
                             g);
      }
      series.push_back(std::move(s));
    }
    driver::print_ratio_table(
        std::cout,
        "Figure 3 (miss = " + std::to_string(penalty) +
            " cycles): geomean MD/AM cycle ratio vs cache size",
        bench::size_labels(), series);
  }
  bench::write_json(json_path, "bench_fig3", wall, metrics);
  bench::maybe_export_obs(obs_args, scale, {});
  return 0;
}
