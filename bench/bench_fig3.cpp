// Figure 3 — "The geometric means of the ratios of the total time taken for
// the set of test programs in the MD to the AM implementation given
// separate data and instruction caches", for miss penalties 12/24/48 and
// associativities 1/2/4 over cache sizes 1K-128K.
//
// Expected shape: the ratio is lowest (MD strongest) at small and at large
// caches, with the AM implementation closing the gap at medium sizes and
// high penalties; direct-mapped caches favour MD ("there is little
// difference between the ratios for 2- and 4-way ... but there is for
// direct-mapped").
//
// --blocks=all extends the sweep to every paper block size (8-64 B): with
// the default stack engine each (workload, back-end) pair is simulated
// once for all four ladders; --engine=classic re-runs the machine per
// block size, which is the pre-stack-engine behaviour and the timing
// baseline of BENCH_stacksim.json.

#include "bench_common.h"

namespace {

bool all_blocks_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--blocks" && i + 1 < argc) {
      a = std::string("--blocks=") + argv[i + 1];
    }
    if (a == "--blocks=all") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  const bool full = all_blocks_from_args(argc, argv);

  driver::RunOptions opts;
  opts.engine = args.engine;
  opts.dispatch = args.dispatch;
  const std::vector<std::uint32_t> blocks =
      full ? std::vector<std::uint32_t>(bench::paper_block_sizes().begin(),
                                        bench::paper_block_sizes().end())
           : std::vector<std::uint32_t>{64};

  bench::Stopwatch clock;
  std::vector<std::vector<driver::BackendPair>> by_block;
  if (opts.engine == driver::CacheEngine::Stack) {
    by_block = bench::run_all_blocksizes(args.scale, opts, blocks);
  } else {
    for (std::uint32_t block : blocks) {
      driver::RunOptions o = opts;
      o.block_bytes = block;
      by_block.push_back(bench::run_all(args.scale, o));
    }
  }
  const double wall = clock.seconds();

  std::vector<std::pair<std::string, double>> metrics;
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    const std::vector<driver::BackendPair>& pairs = by_block[k];
    const std::string mprefix =
        full ? "b" + std::to_string(blocks[k]) + "_" : "";
    if (full) {
      std::cout << "==== " << blocks[k] << "-byte blocks ====\n\n";
    }
    for (std::uint32_t penalty : cache::paper_miss_penalties()) {
      std::vector<driver::Series> series;
      for (std::uint32_t assoc : cache::paper_associativities()) {
        driver::Series s;
        s.name = std::to_string(assoc) + "-way";
        for (std::uint32_t size : cache::paper_cache_sizes()) {
          const double g = bench::ratio_geomean(pairs, size, assoc, penalty);
          s.values.push_back(g);
          metrics.emplace_back(mprefix + "geomean_p" +
                                   std::to_string(penalty) + "_a" +
                                   std::to_string(assoc) + "_" +
                                   std::to_string(size / 1024) + "K",
                               g);
        }
        series.push_back(std::move(s));
      }
      driver::print_ratio_table(
          std::cout,
          "Figure 3 (miss = " + std::to_string(penalty) +
              " cycles): geomean MD/AM cycle ratio vs cache size",
          bench::size_labels(), series);
    }
  }
  std::cerr << "  simulation wall-clock: " << text::fixed(wall, 3) << " s\n";
  bench::write_json(args.json_path, "bench_fig3", wall, metrics);
  // Pass the perf knobs through so the instrumented --profile/--locality
  // runs exercise the same engine/dispatcher as the measurement runs.
  bench::maybe_export_obs(args.obs, args.scale, opts);
  return 0;
}
