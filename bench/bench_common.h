// Shared helpers for the per-table/figure bench binaries.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "driver/experiment.h"
#include "driver/report.h"
#include "metrics/cycles.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/flow.h"
#include "obs/obs.h"
#include "programs/registry.h"
#include "support/error.h"
#include "support/text.h"

namespace jtam::bench {

/// Scale selection: full paper-like defaults, or --quick for CI-speed runs.
inline programs::Scale scale_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      return programs::Scale{12, 60, 10, 10, 12, 2, 40};
    }
  }
  return programs::Scale{};
}

/// --json <path>: where to write machine-readable results ("" = not asked).
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// --nodes <N>: largest node count of a multi-node sweep.  The sweep runs
/// powers of two up to N plus N itself, e.g. --nodes 12 -> 1,2,4,8,12.
/// Default (flag absent) is {1, 2, 4, 8}.
inline std::vector<int> node_counts_from_args(int argc, char** argv,
                                              int def_max = 8) {
  int max_nodes = def_max;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--nodes") max_nodes = std::atoi(argv[i + 1]);
  }
  if (max_nodes < 1) max_nodes = 1;
  std::vector<int> out;
  for (int n = 1; n <= max_nodes; n *= 2) out.push_back(n);
  if (out.back() != max_nodes) out.push_back(max_nodes);
  return out;
}

/// --net=ideal | --net=mesh (or "--net ideal"): restrict a multi-node
/// bench to one network model.  Default: both.
inline std::vector<net::NetKind> nets_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--net" && i + 1 < argc) a = std::string("--net=") + argv[i + 1];
    if (a == "--net=ideal") return {net::NetKind::Ideal};
    if (a == "--net=mesh") return {net::NetKind::Mesh};
  }
  return {net::NetKind::Ideal, net::NetKind::Mesh};
}

/// Aggregation/placement knobs for multi-node benches (net/aggregate,
/// mdp/placement):
///   --agg=off|dest|relay        aggregation modes to sweep (csv; default
///                               off only, which is bit-identical to the
///                               seed path — pinned by aggregate_test)
///   --agg-bytes=<n>             coalescing-buffer seal threshold (bytes)
///   --agg-timeout=<n>           max cycles a partial buffer waits
///   --placement=rr|near|owner|cluster
///                               SENDDR frame-placement policies to sweep
///                               (csv; default rr, the seed policy)
struct AggArgs {
  std::vector<net::AggMode> modes = {net::AggMode::Off};
  std::vector<mdp::PlacementKind> placements = {mdp::PlacementKind::RoundRobin};
  std::uint32_t agg_bytes = 256;
  std::uint32_t agg_timeout = 64;

  /// True when any combination beyond the seed (off, rr) was requested —
  /// the flagless stdout/JSON shape must stay byte-stable otherwise.
  bool sweeping() const {
    return modes.size() > 1 || placements.size() > 1 ||
           modes[0] != net::AggMode::Off ||
           placements[0] != mdp::PlacementKind::RoundRobin;
  }

  void apply(driver::MultiOptions& mo, net::AggMode mode,
             mdp::PlacementKind placement) const {
    mo.agg = mode;
    mo.agg_bytes = agg_bytes;
    mo.agg_timeout = agg_timeout;
    mo.placement.kind = placement;
  }
};

inline AggArgs agg_args_from_args(int argc, char** argv) {
  AggArgs aa;
  auto split_csv = [](const std::string& csv) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
      const std::size_t comma = csv.find(',', pos);
      const std::size_t end = comma == std::string::npos ? csv.size() : comma;
      if (end > pos) out.push_back(csv.substr(pos, end - pos));
      pos = end + 1;
    }
    return out;
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    for (const char* flag : {"--agg", "--agg-bytes", "--agg-timeout",
                             "--placement"}) {
      if (a == flag && i + 1 < argc) a = a + "=" + argv[i + 1];
    }
    if (a.rfind("--agg=", 0) == 0) {
      aa.modes.clear();
      for (const std::string& m : split_csv(a.substr(6))) {
        if (m == "off") aa.modes.push_back(net::AggMode::Off);
        else if (m == "dest") aa.modes.push_back(net::AggMode::Dest);
        else if (m == "relay") aa.modes.push_back(net::AggMode::Relay);
        else throw Error("unknown --agg mode: " + m);
      }
      if (aa.modes.empty()) aa.modes.push_back(net::AggMode::Off);
    }
    if (a.rfind("--agg-bytes=", 0) == 0) {
      aa.agg_bytes = static_cast<std::uint32_t>(
          std::atoi(a.substr(12).c_str()));
    }
    if (a.rfind("--agg-timeout=", 0) == 0) {
      aa.agg_timeout = static_cast<std::uint32_t>(
          std::atoi(a.substr(14).c_str()));
    }
    if (a.rfind("--placement=", 0) == 0) {
      aa.placements.clear();
      for (const std::string& p : split_csv(a.substr(12))) {
        if (p == "rr") aa.placements.push_back(mdp::PlacementKind::RoundRobin);
        else if (p == "near") aa.placements.push_back(
            mdp::PlacementKind::Nearest);
        else if (p == "owner") aa.placements.push_back(
            mdp::PlacementKind::Owner);
        else if (p == "cluster") aa.placements.push_back(
            mdp::PlacementKind::Cluster);
        else throw Error("unknown --placement policy: " + p);
      }
      if (aa.placements.empty()) {
        aa.placements.push_back(mdp::PlacementKind::RoundRobin);
      }
    }
  }
  return aa;
}

/// --engine=stack | --engine=classic (or "--engine stack"): which cache
/// engine measures the ladder.  Purely a performance knob — both engines
/// produce bit-identical counts (tests/stacksim_test.cpp) — kept
/// selectable so benches can time one against the other.
inline driver::CacheEngine engine_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--engine" && i + 1 < argc) {
      a = std::string("--engine=") + argv[i + 1];
    }
    if (a == "--engine=classic") return driver::CacheEngine::Classic;
    if (a == "--engine=stack") return driver::CacheEngine::Stack;
  }
  return driver::CacheEngine::Stack;
}

/// --dispatch=decoded | --dispatch=classic (or "--dispatch decoded"):
/// which interpreter loop runs the machine.  Like --engine this is purely
/// a performance knob — both dispatchers produce bit-identical results
/// (tests/interp_test.cpp) — kept selectable so the decoded engine can be
/// timed against the seed switch loop on identical output.
inline mdp::DispatchKind dispatch_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--dispatch" && i + 1 < argc) {
      a = std::string("--dispatch=") + argv[i + 1];
    }
    if (a == "--dispatch=classic") return mdp::DispatchKind::Classic;
    if (a == "--dispatch=decoded") return mdp::DispatchKind::Decoded;
  }
  return mdp::DispatchKind::Decoded;
}

/// The block sizes of the paper's §3.3 setup sweep ("block sizes varying
/// from 8 to 64 bytes").
inline std::span<const std::uint32_t> paper_block_sizes() {
  static constexpr std::uint32_t kBlocks[] = {8, 16, 32, 64};
  return kBlocks;
}

/// Observability flags shared by every bench binary:
///   --trace <path>  write a Chrome/Perfetto timeline of every (workload,
///                   back-end) run at the bench's scale;
///   --profile       print a flat profile + distribution summary per run;
///   --locality      print a locality scorecard per run (per-symbol MRCs,
///                   access-class breakdown, frame reuse distances) plus an
///                   MD vs AM per-symbol diff per workload; with --trace
///                   the timeline gains locality counter tracks;
///   --out <path>    write the textual obs/locality reports to a file
///                   instead of interleaving them with the bench's stdout
///                   metric block;
///   --flow <path>   run each paper workload on a 4-node mesh with causal
///                   message tracing and write one merged multi-node
///                   Perfetto timeline (flow arrows across node tracks),
///                   plus a per-run critical-path report;
///   --host-profile  time the host itself: the obs report gains a
///                   host-time observatory section (engine wall clock,
///                   trace-pipeline stage times, thread-pool worker
///                   utilization) attributing where the simulator spends
///                   real time.
struct ObsArgs {
  std::string trace_path;
  std::string flow_path;
  std::string out_path;
  bool profile = false;
  bool locality = false;
  bool host_profile = false;
  bool any() const {
    return profile || locality || host_profile || !trace_path.empty() ||
           !flow_path.empty();
  }
};

inline ObsArgs obs_args_from_args(int argc, char** argv) {
  ObsArgs oa;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) oa.trace_path = argv[i + 1];
    if (a.rfind("--trace=", 0) == 0) oa.trace_path = a.substr(8);
    if (a == "--flow" && i + 1 < argc) oa.flow_path = argv[i + 1];
    if (a.rfind("--flow=", 0) == 0) oa.flow_path = a.substr(7);
    if (a == "--out" && i + 1 < argc) oa.out_path = argv[i + 1];
    if (a.rfind("--out=", 0) == 0) oa.out_path = a.substr(6);
    if (a == "--profile") oa.profile = true;
    if (a == "--locality") oa.locality = true;
    if (a == "--host-profile") oa.host_profile = true;
  }
  return oa;
}

/// The flags every per-table/figure bench accepts, parsed in one call —
/// the boilerplate that used to be copied into each main().
struct CommonArgs {
  programs::Scale scale;
  std::string json_path;          // --json <path> ("" = not asked)
  driver::CacheEngine engine{};   // --engine=stack|classic
  mdp::DispatchKind dispatch{};   // --dispatch=decoded|classic
  ObsArgs obs;                    // --trace / --profile / --flow

  /// Baseline RunOptions with the performance knobs applied.
  driver::RunOptions run_options() const {
    driver::RunOptions opts;
    opts.engine = engine;
    opts.dispatch = dispatch;
    return opts;
  }
};

inline CommonArgs common_args(int argc, char** argv) {
  CommonArgs ca;
  ca.scale = scale_from_args(argc, argv);
  ca.json_path = json_path_from_args(argc, argv);
  ca.engine = engine_from_args(argc, argv);
  ca.dispatch = dispatch_from_args(argc, argv);
  ca.obs = obs_args_from_args(argc, argv);
  return ca;
}

/// When --flow was given, rerun each paper workload under both back-ends
/// on a 4-node mesh with causal tracing on, write the merged multi-node
/// Perfetto timeline, and print each run's critical-path decomposition.
/// Like maybe_export_obs these are extra instrumented runs; measurement
/// runs never see the tracer.
inline void maybe_export_flow(const ObsArgs& oa,
                              const programs::Scale& scale) {
  if (oa.flow_path.empty()) return;
  driver::RunOptions opts;
  opts.with_cache = false;
  driver::MultiOptions mopts;
  mopts.num_nodes = 4;
  mopts.net = net::NetKind::Mesh;
  mopts.flow.enabled = true;
  mopts.flow.sample_every = 256;

  std::vector<std::pair<std::string, std::shared_ptr<const obs::FlowTrace>>>
      traces;
  for (const programs::Workload& w : programs::paper_workloads(scale)) {
    for (rt::BackendKind b :
         {rt::BackendKind::MessageDriven, rt::BackendKind::ActiveMessages}) {
      opts.backend = b;
      driver::MultiRunResult r = driver::run_workload_multi(w, opts, mopts);
      const std::string label =
          w.name + (b == rt::BackendKind::MessageDriven ? " / MD" : " / AM");
      if (r.flow != nullptr) {
        std::cout << "\n== " << label << " (4-node mesh) ==\n";
        obs::write_critical_path(std::cout, *r.flow,
                                 obs::analyze_critical_path(*r.flow));
        traces.emplace_back(label, r.flow);
      }
    }
  }
  std::vector<std::pair<std::string, const obs::FlowTrace*>> refs;
  refs.reserve(traces.size());
  for (const auto& [label, tr] : traces) refs.emplace_back(label, tr.get());
  std::string note = "(";
  note += std::to_string(refs.size());
  note += " flow traces)";
  obs::write_file(
      oa.flow_path, "flow trace",
      [&](std::ostream& out) { obs::write_flow_chrome_trace(out, refs); },
      note);
}

/// When --trace/--profile/--locality was given, run each paper workload
/// under both back-ends with the requested collectors attached and emit
/// the artifacts.  These are extra instrumented runs made directly through
/// run_workload (never the memo): measurement runs stay untouched, and the
/// collectors cost nothing when the flags are absent.  The measured cache
/// ladder is skipped — the profiler and locality collector simulate their
/// own caches.  With --locality the per-run report includes the locality
/// scorecard and, per workload, an MD vs AM per-symbol diff at the
/// headline config; --out routes all textual reports to a file so they do
/// not interleave with the bench's stdout metric block.
inline void maybe_export_obs(const ObsArgs& oa, const programs::Scale& scale,
                             driver::RunOptions opts) {
  if (!oa.any()) return;
  maybe_export_flow(oa, scale);
  if (!oa.profile && !oa.locality && !oa.host_profile &&
      oa.trace_path.empty()) {
    return;
  }
  opts.with_cache = false;
  opts.obs.profile = oa.profile;
  opts.obs.histograms = oa.profile;
  opts.obs.pipeline_metrics = oa.profile;
  opts.obs.timeline = !oa.trace_path.empty();
  opts.obs.locality = oa.locality;
  opts.obs.host_profile = oa.host_profile;

  std::ofstream out_file;
  std::ostream* rep = &std::cout;
  if (!oa.out_path.empty()) {
    out_file.open(oa.out_path);
    if (out_file) {
      rep = &out_file;
    } else {
      std::cerr << "warning: could not write obs report to " << oa.out_path
                << "\n";
    }
  }

  std::vector<std::pair<std::string, std::shared_ptr<const obs::Report>>>
      runs;
  for (const programs::Workload& w : programs::paper_workloads(scale)) {
    std::shared_ptr<const obs::Report> md_report;
    for (rt::BackendKind b :
         {rt::BackendKind::MessageDriven, rt::BackendKind::ActiveMessages}) {
      opts.backend = b;
      driver::RunResult r = driver::run_workload(w, opts);
      const std::string label =
          w.name + (b == rt::BackendKind::MessageDriven ? " / MD" : " / AM");
      if ((oa.profile || oa.locality || oa.host_profile) &&
          r.obs != nullptr) {
        *rep << "\n== " << label << " ==\n";
        r.obs->write_text(*rep);
      }
      if (b == rt::BackendKind::MessageDriven) {
        md_report = r.obs;
      } else if (md_report != nullptr && r.obs != nullptr &&
                 md_report->locality && r.obs->locality) {
        const obs::LocalityReport& md = *md_report->locality;
        obs::LocalityReport::diff(md, *r.obs->locality, md.headline)
            .write_text(*rep);
      }
      runs.emplace_back(label, r.obs);
    }
  }
  if (out_file) std::cerr << "  wrote " << oa.out_path << "\n";
  if (!oa.trace_path.empty()) {
    // With locality on, merge the counter tracks into the timeline file;
    // both shapes load in Perfetto the same way.
    std::vector<obs::LocalityTimelineRun> merged;
    for (const auto& [label, report] : runs) {
      if (report == nullptr) continue;
      obs::LocalityTimelineRun run;
      run.label = label;
      if (report->timeline) run.timeline = &*report->timeline;
      if (report->locality) run.locality = &*report->locality;
      if (run.timeline != nullptr || run.locality != nullptr) {
        merged.push_back(run);
      }
    }
    std::string note = "(";
    note += std::to_string(merged.size());
    note += " timelines";
    if (oa.locality) note += " + locality counters";
    note += ")";
    obs::write_file(
        oa.trace_path, "timeline",
        [&](std::ostream& out) {
          obs::write_locality_chrome_trace(out, merged);
        },
        note);
  }
}

/// Wall-clock stopwatch for the simulation phase of a bench.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Write a flat {"bench":..., "wall_seconds":..., "metrics": {...}} JSON
/// report, so successive PRs can track a perf trajectory (BENCH_*.json).
inline void write_json(const std::string& path, const std::string& bench_name,
                       double wall_seconds,
                       const std::vector<std::pair<std::string, double>>&
                           metrics) {
  if (path.empty()) return;
  std::ostringstream os;
  os.precision(15);
  os << "{\n  \"schema_version\": " << obs::kObsSchemaVersion
     << ",\n  \"bench\": \"" << bench_name << "\",\n  \"wall_seconds\": "
     << wall_seconds << ",\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << metrics[i].first
       << "\": " << metrics[i].second;
  }
  // Run-memo effectiveness rides along in every report: how many of the
  // bench's simulation requests were served from the process-wide memo.
  const driver::RunMemoStats memo = driver::run_memo_stats();
  os << (metrics.empty() ? "\n" : ",\n")
     << "    \"run_memo_hits\": " << memo.hits
     << ",\n    \"run_memo_misses\": " << memo.misses;
  os << "\n  }\n}\n";
  obs::write_file(path, "JSON report",
                  [&](std::ostream& out) { out << os.str(); });
}

/// Run every paper workload under both back-ends with the given options.
/// All (workload, back-end) pairs go through one run_many call, so they
/// execute concurrently on multi-CPU hosts and repeats hit the run memo.
inline std::vector<driver::BackendPair> run_all(
    const programs::Scale& scale, const driver::RunOptions& opts) {
  const std::vector<programs::Workload> ws = programs::paper_workloads(scale);
  std::cerr << "  simulating " << ws.size() << " workloads x {MD, AM} ...\n";
  std::vector<driver::RunRequest> reqs;
  reqs.reserve(ws.size() * 2);
  for (const programs::Workload& w : ws) {
    driver::RunRequest md{w, opts};
    md.opts.backend = rt::BackendKind::MessageDriven;
    driver::RunRequest am{w, opts};
    am.opts.backend = rt::BackendKind::ActiveMessages;
    reqs.push_back(std::move(md));
    reqs.push_back(std::move(am));
  }
  std::vector<driver::RunResult> rs = driver::run_many(reqs);
  std::vector<driver::BackendPair> out(ws.size());
  for (std::size_t i = 0; i < ws.size(); ++i) {
    out[i].md = std::move(rs[2 * i]);
    out[i].am = std::move(rs[2 * i + 1]);
    driver::require_ok({&out[i].md, &out[i].am});
  }
  return out;
}

/// Run every paper workload under both back-ends at each block size in
/// `blocks`.  With the stack engine each (workload, back-end) pair costs
/// ONE machine pass for all block sizes (driver::run_blocksize_sweep); the
/// classic engine falls back to one memoized run per size.  out[k] holds
/// the BackendPairs at blocks[k], workload order matching run_all.
inline std::vector<std::vector<driver::BackendPair>> run_all_blocksizes(
    const programs::Scale& scale, const driver::RunOptions& opts,
    std::span<const std::uint32_t> blocks) {
  const std::vector<programs::Workload> ws = programs::paper_workloads(scale);
  std::cerr << "  simulating " << ws.size() << " workloads x {MD, AM} x "
            << blocks.size() << " block sizes ...\n";
  std::vector<std::vector<driver::BackendPair>> out(
      blocks.size(), std::vector<driver::BackendPair>(ws.size()));
  for (std::size_t i = 0; i < ws.size(); ++i) {
    for (rt::BackendKind b :
         {rt::BackendKind::MessageDriven, rt::BackendKind::ActiveMessages}) {
      driver::RunOptions o = opts;
      o.backend = b;
      std::vector<driver::RunResult> rs =
          driver::run_blocksize_sweep(ws[i], o, blocks);
      for (std::size_t k = 0; k < blocks.size(); ++k) {
        driver::RunResult& slot = b == rt::BackendKind::MessageDriven
                                      ? out[k][i].md
                                      : out[k][i].am;
        slot = std::move(rs[k]);
      }
    }
    for (std::size_t k = 0; k < blocks.size(); ++k) {
      driver::require_ok({&out[k][i].md, &out[k][i].am});
    }
  }
  return out;
}

/// MD/AM cycle-ratio geometric mean across a set of runs at one config.
inline double ratio_geomean(const std::vector<driver::BackendPair>& pairs,
                            std::uint32_t size, std::uint32_t assoc,
                            std::uint32_t penalty, bool exclude_ss = false) {
  std::vector<double> rs;
  for (const driver::BackendPair& p : pairs) {
    if (exclude_ss && p.md.workload == "ss") continue;
    rs.push_back(p.ratio(size, assoc, penalty));
  }
  return metrics::geomean(rs);
}

inline std::vector<std::string> size_labels() {
  std::vector<std::string> out;
  for (std::uint32_t s : cache::paper_cache_sizes()) {
    out.push_back(std::to_string(s / 1024) + "K");
  }
  return out;
}

}  // namespace jtam::bench
