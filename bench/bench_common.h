// Shared helpers for the per-table/figure bench binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/report.h"
#include "metrics/cycles.h"
#include "programs/registry.h"
#include "support/text.h"

namespace jtam::bench {

/// Scale selection: full paper-like defaults, or --quick for CI-speed runs.
inline programs::Scale scale_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      return programs::Scale{12, 60, 10, 10, 12, 2, 40};
    }
  }
  return programs::Scale{};
}

/// Run every paper workload under both back-ends with the given options.
inline std::vector<driver::BackendPair> run_all(
    const programs::Scale& scale, const driver::RunOptions& opts) {
  std::vector<driver::BackendPair> out;
  for (const programs::Workload& w : programs::paper_workloads(scale)) {
    std::cerr << "  running " << w.name << " ...\n";
    out.push_back(driver::run_both(w, opts));
    driver::require_ok({&out.back().md, &out.back().am});
  }
  return out;
}

/// MD/AM cycle-ratio geometric mean across a set of runs at one config.
inline double ratio_geomean(const std::vector<driver::BackendPair>& pairs,
                            std::uint32_t size, std::uint32_t assoc,
                            std::uint32_t penalty, bool exclude_ss = false) {
  std::vector<double> rs;
  for (const driver::BackendPair& p : pairs) {
    if (exclude_ss && p.md.workload == "ss") continue;
    rs.push_back(p.ratio(size, assoc, penalty));
  }
  return metrics::geomean(rs);
}

inline std::vector<std::string> size_labels() {
  std::vector<std::string> out;
  for (std::uint32_t s : cache::paper_cache_sizes()) {
    out.push_back(std::to_string(s / 1024) + "K");
  }
  return out;
}

}  // namespace jtam::bench
