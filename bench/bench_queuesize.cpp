// §2.3 consequence 1 ablation — queue capacity.
//
// "Since inlets are not executed at high priority, the message queue has a
// greater likelihood of overflowing.  We do not address this concern in
// this paper, only running programs that fit in the message queue.  We
// verified that substantial problems could be solved without using all the
// memory available for message queues."
//
// This bench regenerates that verification: per program and back-end, the
// peak queue occupancy (high-water mark) against the 4 KB hardware limit,
// and the smallest power-of-two queue that still completes the run.

#include "bench_common.h"
#include "support/error.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);

  text::Table t;
  t.header({"Program", "MD low-q peak", "MD high-q peak", "AM high-q peak",
            "min queue (MD)"});
  for (const programs::Workload& w : programs::paper_workloads(args.scale)) {
    std::cerr << "  running " << w.name << " ...\n";
    driver::RunOptions opts;
    opts.with_cache = false;
    opts.backend = rt::BackendKind::MessageDriven;
    driver::RunResult md = driver::run_workload(w, opts);
    opts.backend = rt::BackendKind::ActiveMessages;
    driver::RunResult am = driver::run_workload(w, opts);
    driver::require_ok({&md, &am});

    // Shrink the MD queue until the run no longer completes.
    std::uint32_t min_q = mem::kQueueBytes;
    for (std::uint32_t q = mem::kQueueBytes; q >= 64; q /= 2) {
      driver::RunOptions small;
      small.with_cache = false;
      small.backend = rt::BackendKind::MessageDriven;
      small.queue_bytes = q;
      bool ok = false;
      try {
        ok = driver::run_workload(w, small).ok();
      } catch (const jtam::Error&) {
        ok = false;  // hardware queue overflow
      }
      if (!ok) break;
      min_q = q;
    }

    t.row({w.name,
           std::to_string(md.queue_high_water[0]) + "B",
           std::to_string(md.queue_high_water[1]) + "B",
           std::to_string(am.queue_high_water[1]) + "B",
           std::to_string(min_q) + "B"});
  }
  t.print(std::cout);
  std::cout << "\nEvery paper workload fits the 4096-byte hardware queue "
               "with headroom, as the\npaper verified; the MD low-priority "
               "queue is the deep one (it is the task queue).\n";
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
