// Multi-node extension study — the paper's stated future work:
//
// "While our results were only for uniprocessors, our isolation of a
// uniprocessor anomaly (Section 2.4) gives reason to believe our work
// would extend to multiple processors, although further research needs to
// be done."
//
// Runs every workload across a node-count sweep under both back-ends and
// both network models (src/net): the ideal constant-latency wire, and the
// cycle-level 3D-mesh wormhole interconnect with finite link buffers and
// two priority virtual networks.  Beyond the seed's parallel-rounds and
// message counts, the mesh reports what a real J-Machine network adds to
// the AM-vs-MD story: per-message hop and end-to-end latency
// distributions, injection-stall cycles from backpressured SENDEs, and
// the hottest link's flit utilization — the regime where message locality
// starts to matter.
//
// Flags: --quick, --json <path>, --nodes <N> (sweep to N, default 8),
//        --net=ideal|mesh (default: both).

#include "bench_common.h"
#include "support/error.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  programs::Scale scale{16, 80, 12, 11, 16, 3, 60};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      scale = programs::Scale{8, 30, 8, 8, 8, 2, 20};
    }
  }
  const std::vector<int> node_counts = bench::node_counts_from_args(argc, argv);
  const std::vector<net::NetKind> nets = bench::nets_from_args(argc, argv);
  const int top_nodes = node_counts.back();

  bench::Stopwatch watch;
  std::vector<std::pair<std::string, double>> json_metrics;
  for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                  rt::BackendKind::ActiveMessages}) {
    const char* bk =
        backend == rt::BackendKind::MessageDriven ? "md" : "am";
    for (net::NetKind kind : nets) {
      std::cout << "=== " << rt::backend_name(backend) << " / "
                << net::net_kind_name(kind) << " network ===\n";
      text::Table t;
      {
        std::vector<std::string> hdr{"Program"};
        for (int n : node_counts) hdr.push_back("N=" + std::to_string(n));
        hdr.insert(hdr.end(), {"speedup", "msgs", "inj-stall", "hops p50/p95",
                               "lat p50/p95", "hot link"});
        t.header(hdr);
      }
      for (const programs::Workload& w : programs::paper_workloads(scale)) {
        std::cerr << "  running " << w.name << " ("
                  << net::net_kind_name(kind) << ") ...\n";
        driver::RunOptions opts;
        opts.backend = backend;
        std::vector<std::string> row{w.name};
        std::uint64_t r1 = 0;
        driver::MultiRunResult top;
        for (int nodes : node_counts) {
          driver::MultiOptions mo;
          mo.num_nodes = nodes;
          mo.net = kind;
          driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
          if (!r.ok()) {
            throw Error(w.name + " failed on " + std::to_string(nodes) +
                        " nodes (" + net::net_kind_name(kind) +
                        "): " + r.check_error);
          }
          row.push_back(text::with_commas(r.rounds));
          if (nodes == 1) r1 = r.rounds;
          if (nodes == top_nodes) top = std::move(r);
        }
        const double speedup =
            static_cast<double>(r1) / static_cast<double>(top.rounds);
        // Hottest link: flit traversals / network cycles, over all links.
        double hot = 0;
        for (const net::LinkStats& l : top.links) {
          if (top.net_cycles > 0) {
            hot = std::max(hot, static_cast<double>(l.flits) /
                                    static_cast<double>(top.net_cycles));
          }
        }
        row.push_back(text::fixed(speedup, 2));
        row.push_back(text::with_commas(top.messages));
        row.push_back(text::with_commas(top.injection_stall_cycles));
        row.push_back(text::fixed(top.hops.p50(), 1) + "/" +
                      text::fixed(top.hops.p95(), 1));
        row.push_back(text::fixed(top.msg_latency.p50(), 1) + "/" +
                      text::fixed(top.msg_latency.p95(), 1));
        row.push_back(kind == net::NetKind::Mesh
                          ? text::fixed(100.0 * hot, 1) + "%"
                          : std::string("-"));
        t.row(row);

        const std::string key = std::string(bk) + "." +
                                net::net_kind_name(kind) + "." + w.name +
                                ".n" + std::to_string(top_nodes) + ".";
        json_metrics.emplace_back(key + "rounds",
                                  static_cast<double>(top.rounds));
        json_metrics.emplace_back(key + "speedup", speedup);
        json_metrics.emplace_back(key + "messages",
                                  static_cast<double>(top.messages));
        json_metrics.emplace_back(
            key + "inj_stall_cycles",
            static_cast<double>(top.injection_stall_cycles));
        if (kind == net::NetKind::Mesh) {
          json_metrics.emplace_back(key + "hops_mean", top.hops.mean());
          json_metrics.emplace_back(key + "lat_p95", top.msg_latency.p95());
          json_metrics.emplace_back(key + "hot_link_util", hot);
        }
      }
      t.print(std::cout);
      std::cout << "\n";
    }
  }
  std::cout << "Speedups mirror each program's dataflow: independent rows "
               "(mmt) scale, the\nwavefront row pipeline and single-frame "
               "selection sort do not.  The mesh\ncolumns show what the "
               "ideal wire hides: hop-dependent latency, hot links,\nand "
               "SENDE injection stalls under contention.\n";
  bench::write_json(bench::json_path_from_args(argc, argv), "multinode",
                    watch.seconds(), json_metrics);
  return 0;
}
