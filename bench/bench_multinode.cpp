// Multi-node extension study — the paper's stated future work:
//
// "While our results were only for uniprocessors, our isolation of a
// uniprocessor anomaly (Section 2.4) gives reason to believe our work
// would extend to multiple processors, although further research needs to
// be done."
//
// Runs every workload across a node-count sweep under both back-ends and
// both network models (src/net): the ideal constant-latency wire, and the
// cycle-level 3D-mesh wormhole interconnect with finite link buffers and
// two priority virtual networks.  Beyond the seed's parallel-rounds and
// message counts, the mesh reports what a real J-Machine network adds to
// the AM-vs-MD story: per-message hop and end-to-end latency
// distributions, injection-stall cycles from backpressured SENDEs, and
// the hottest link's flit utilization — the regime where message locality
// starts to matter.
//
// Flags: --quick, --json <path>, --nodes <N> (sweep to N, default 8),
//        --net=ideal|mesh (default: both),
//        --programs <csv> (restrict the sweep, e.g. --programs mmt,qs),
//        --agg=off|dest|relay, --agg-bytes=<n>, --agg-timeout=<n>,
//        --placement=rr|near|owner|cluster (csv lists open an
//        aggregation x placement sweep; the flagless defaults off/rr
//        keep the seed output byte-identical — see bench_common.h),
//        --flow <out.json> (rerun each program at the top node count with
//        causal tracing: merged multi-node Perfetto timeline with flow
//        arrows, plus a critical-path report per run on stdout.  These
//        instrumented reruns leave the measured sweep untouched; they run
//        under the first requested agg/placement combination),
//        --threads <csv> (e.g. --threads 1,2,4,8: time the windowed
//        parallel engine (mdp/parmulti.cpp) against the serial loop at the
//        top node count, verify every measured field is bit-identical, and
//        emit a parallel.* JSON stat block — threads, windows, barriers,
//        wall-ms, speedup.  Speedups track the host's CPU count; the
//        equivalence check does not),
//        --host-profile (host-time observatory: rerun each program at the
//        top node count with the wall-clock profiler attached — first a
//        plain run, then the layered one, verified bit-identical — print
//        each HostReport and emit host.* JSON keys),
//        --signals (attach the online signal bus to the same layered
//        reruns; implies the identity check too),
//        --host-trace <out.json> (merged Perfetto document: host-clock
//        phase/window tracks per layered run),
//        --host-out <out.json> / --signals-out <out.json> (machine-
//        readable HostReport / SignalSnapshot dumps, one labeled entry
//        per layered run).

#include <algorithm>

#include "bench_common.h"
#include "obs/host.h"
#include "obs/signals.h"
#include "support/error.h"
#include "support/json.h"

namespace {

/// --programs <csv> / --programs=<csv>: workload-name filter ("" = all).
std::vector<std::string> programs_from_args(int argc, char** argv) {
  std::string csv;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--programs" && i + 1 < argc) csv = argv[i + 1];
    if (a.rfind("--programs=", 0) == 0) csv = a.substr(11);
  }
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) out.push_back(csv.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

/// --threads <csv> / --threads=<csv>: worker counts for the parallel-engine
/// sweep (empty = sweep not requested).
std::vector<unsigned> threads_from_args(int argc, char** argv) {
  std::string csv;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) csv = argv[i + 1];
    if (a.rfind("--threads=", 0) == 0) csv = a.substr(10);
  }
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) {
      const int v = std::atoi(csv.substr(pos, end - pos).c_str());
      if (v >= 1) out.push_back(static_cast<unsigned>(v));
    }
    pos = end + 1;
  }
  return out;
}

/// --signals / --host-trace <path> / --host-out <path> /
/// --signals-out <path>: the host-observatory knobs beyond bench_common's
/// --host-profile.
struct HostArgs {
  bool signals = false;
  std::string trace_path;
  std::string host_out;
  std::string signals_out;
};

HostArgs host_args_from_args(int argc, char** argv) {
  HostArgs ha;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    for (const char* flag : {"--host-trace", "--host-out", "--signals-out"}) {
      if (a == flag && i + 1 < argc) a = a + "=" + argv[i + 1];
    }
    if (a == "--signals") ha.signals = true;
    if (a.rfind("--host-trace=", 0) == 0) ha.trace_path = a.substr(13);
    if (a.rfind("--host-out=", 0) == 0) ha.host_out = a.substr(11);
    if (a.rfind("--signals-out=", 0) == 0) ha.signals_out = a.substr(14);
  }
  return ha;
}

/// Every measured field of two multi-node runs must agree exactly — the
/// parallel engine's contract (ParallelStats and the flow trace are
/// execution reports, not measurements, and are excluded).
void require_identical(const jtam::driver::MultiRunResult& serial,
                       const jtam::driver::MultiRunResult& par,
                       const std::string& what) {
  const bool same =
      serial.status == par.status && serial.halt_value == par.halt_value &&
      serial.rounds == par.rounds &&
      serial.total_instructions == par.total_instructions &&
      serial.messages == par.messages &&
      serial.injection_stall_cycles == par.injection_stall_cycles &&
      serial.stalled_sends == par.stalled_sends &&
      serial.per_node_instructions == par.per_node_instructions &&
      serial.per_node_injection_stalls == par.per_node_injection_stalls &&
      serial.net_stats == par.net_stats;
  if (!same) {
    throw jtam::Error(what + ": parallel run diverged from the serial "
                             "baseline");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  programs::Scale scale{16, 80, 12, 11, 16, 3, 60};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      scale = programs::Scale{8, 30, 8, 8, 8, 2, 20};
    }
  }
  const std::vector<int> node_counts = bench::node_counts_from_args(argc, argv);
  const std::vector<net::NetKind> nets = bench::nets_from_args(argc, argv);
  const std::vector<std::string> only = programs_from_args(argc, argv);
  const bench::ObsArgs obs_args = bench::obs_args_from_args(argc, argv);
  const bench::AggArgs agg_args = bench::agg_args_from_args(argc, argv);
  const std::vector<unsigned> thread_counts = threads_from_args(argc, argv);
  const HostArgs host_args = host_args_from_args(argc, argv);
  const int top_nodes = node_counts.back();

  // One table section per (agg mode, placement) combination.  Without the
  // flags this is the single seed combination (off, rr) and every byte of
  // output below stays identical to the pre-aggregation bench.
  struct Combo {
    net::AggMode agg;
    mdp::PlacementKind placement;
  };
  std::vector<Combo> combos;
  for (net::AggMode m : agg_args.modes) {
    for (mdp::PlacementKind p : agg_args.placements) combos.push_back({m, p});
  }
  const bool sweeping = agg_args.sweeping();

  std::vector<programs::Workload> workloads;
  for (programs::Workload& w : programs::paper_workloads(scale)) {
    if (only.empty() ||
        std::find(only.begin(), only.end(), w.name) != only.end()) {
      workloads.push_back(std::move(w));
    }
  }
  if (workloads.empty()) throw Error("--programs matched no workload");

  bench::Stopwatch watch;
  std::vector<std::pair<std::string, double>> json_metrics;
  for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                  rt::BackendKind::ActiveMessages}) {
    const char* bk =
        backend == rt::BackendKind::MessageDriven ? "md" : "am";
    for (net::NetKind kind : nets) {
      for (const Combo& combo : combos) {
        const bool agg_on = combo.agg != net::AggMode::Off;
        std::cout << "=== " << rt::backend_name(backend) << " / "
                  << net::net_kind_name(kind) << " network";
        if (sweeping) {
          std::cout << " / agg=" << net::agg_mode_name(combo.agg);
          if (agg_on) {
            std::cout << "(" << agg_args.agg_bytes << "B,"
                      << agg_args.agg_timeout << "cy)";
          }
          std::cout << " / placement="
                    << mdp::placement_kind_name(combo.placement);
        }
        std::cout << " ===\n";
        text::Table t;
        {
          std::vector<std::string> hdr{"Program"};
          for (int n : node_counts) hdr.push_back("N=" + std::to_string(n));
          hdr.insert(hdr.end(), {"speedup", "msgs", "inj-stall",
                                 "hops p50/p95", "lat p50/p95", "hot link"});
          if (agg_on) hdr.insert(hdr.end(), {"bundles", "msgs/bndl"});
          t.header(hdr);
        }
        for (const programs::Workload& w : workloads) {
          std::cerr << "  running " << w.name << " ("
                    << net::net_kind_name(kind) << ") ...\n";
          driver::RunOptions opts;
          opts.backend = backend;
          std::vector<std::string> row{w.name};
          std::uint64_t r1 = 0;
          driver::MultiRunResult top;
          for (int nodes : node_counts) {
            driver::MultiOptions mo;
            mo.num_nodes = nodes;
            mo.net = kind;
            agg_args.apply(mo, combo.agg, combo.placement);
            driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
            if (!r.ok()) {
              throw Error(w.name + " failed on " + std::to_string(nodes) +
                          " nodes (" + net::net_kind_name(kind) +
                          "): " + r.check_error);
            }
            row.push_back(text::with_commas(r.rounds));
            if (nodes == 1) r1 = r.rounds;
            if (nodes == top_nodes) top = std::move(r);
          }
          const double speedup =
              static_cast<double>(r1) / static_cast<double>(top.rounds);
          // Hottest link: flit traversals / network cycles, over all links.
          double hot = 0;
          for (const net::LinkStats& l : top.links) {
            if (top.net_cycles > 0) {
              hot = std::max(hot, static_cast<double>(l.flits) /
                                      static_cast<double>(top.net_cycles));
            }
          }
          row.push_back(text::fixed(speedup, 2));
          row.push_back(text::with_commas(top.messages));
          row.push_back(text::with_commas(top.injection_stall_cycles));
          row.push_back(text::fixed(top.hops.p50(), 1) + "/" +
                        text::fixed(top.hops.p95(), 1));
          row.push_back(text::fixed(top.msg_latency.p50(), 1) + "/" +
                        text::fixed(top.msg_latency.p95(), 1));
          row.push_back(kind == net::NetKind::Mesh
                            ? text::fixed(100.0 * hot, 1) + "%"
                            : std::string("-"));
          const net::AggStats& agg = top.net_stats.agg;
          if (agg_on) {
            row.push_back(text::with_commas(agg.bundles));
            row.push_back(agg.bundles > 0
                              ? text::fixed(agg.bundle_messages.mean(), 1)
                              : std::string("-"));
          }
          t.row(row);

          std::string key = std::string(bk) + "." +
                            net::net_kind_name(kind) + ".";
          if (sweeping) {
            key += std::string("agg-") + net::agg_mode_name(combo.agg) +
                   ".pl-" + mdp::placement_kind_name(combo.placement) + ".";
          }
          key += w.name + ".n" + std::to_string(top_nodes) + ".";
          json_metrics.emplace_back(key + "rounds",
                                    static_cast<double>(top.rounds));
          json_metrics.emplace_back(key + "speedup", speedup);
          json_metrics.emplace_back(key + "messages",
                                    static_cast<double>(top.messages));
          json_metrics.emplace_back(
              key + "inj_stall_cycles",
              static_cast<double>(top.injection_stall_cycles));
          if (kind == net::NetKind::Mesh) {
            json_metrics.emplace_back(key + "hops_mean", top.hops.mean());
            json_metrics.emplace_back(key + "lat_p95", top.msg_latency.p95());
            json_metrics.emplace_back(key + "hot_link_util", hot);
          }
          if (agg_on) {
            // Aggregation stats block (satellite of the aggregation
            // subsystem): how much the coalescing layer actually bundled.
            json_metrics.emplace_back(key + "agg.bundles",
                                      static_cast<double>(agg.bundles));
            json_metrics.emplace_back(
                key + "agg.bundled_messages",
                static_cast<double>(agg.bundled_messages));
            json_metrics.emplace_back(
                key + "agg.bypass_messages",
                static_cast<double>(agg.bypass_messages));
            json_metrics.emplace_back(
                key + "agg.relay_forwards",
                static_cast<double>(agg.relay_forwards));
            json_metrics.emplace_back(key + "agg.flush_size",
                                      static_cast<double>(agg.flush_size));
            json_metrics.emplace_back(key + "agg.flush_timeout",
                                      static_cast<double>(agg.flush_timeout));
            json_metrics.emplace_back(key + "agg.msgs_per_bundle",
                                      agg.bundle_messages.mean());
            json_metrics.emplace_back(key + "agg.buffer_wait_p95",
                                      agg.buffer_wait.p95());
          }
          if (sweeping) {
            // Placement stats block: how evenly the policy spread work.
            std::uint64_t max_instr = 0;
            std::uint64_t sum_instr = 0;
            for (std::uint64_t n : top.per_node_instructions) {
              max_instr = std::max(max_instr, n);
              sum_instr += n;
            }
            const double mean_instr =
                top.per_node_instructions.empty()
                    ? 0.0
                    : static_cast<double>(sum_instr) /
                          static_cast<double>(top.per_node_instructions.size());
            json_metrics.emplace_back(
                key + "placement.instr_imbalance",
                mean_instr > 0 ? static_cast<double>(max_instr) / mean_instr
                               : 0.0);
          }
        }
        t.print(std::cout);
        std::cout << "\n";
      }
    }
  }
  std::cout << "Speedups mirror each program's dataflow: independent rows "
               "(mmt) scale, the\nwavefront row pipeline and single-frame "
               "selection sort do not.  The mesh\ncolumns show what the "
               "ideal wire hides: hop-dependent latency, hot links,\nand "
               "SENDE injection stalls under contention.\n";
  if (sweeping) {
    std::cout << "Aggregation bundles only the low-priority virtual network "
                 "— MD task-queue\ntraffic coalesces, AM inlet traffic "
                 "(priority-high) bypasses untouched — so\nthe sweep shifts "
                 "the MD columns and leaves AM as the control.\n";
  }
  // --threads: the parallel-engine sweep.  Every parallel run is checked
  // bit-identical to a freshly-timed serial baseline before its wall time
  // is reported, so a speedup can never be bought with a divergent result.
  if (!thread_counts.empty()) {
    for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                    rt::BackendKind::ActiveMessages}) {
      const char* bk =
          backend == rt::BackendKind::MessageDriven ? "md" : "am";
      for (net::NetKind kind : nets) {
        std::cout << "=== parallel engine / " << rt::backend_name(backend)
                  << " / " << net::net_kind_name(kind) << " network / N="
                  << top_nodes << " ===\n";
        text::Table t;
        {
          std::vector<std::string> hdr{"Program", "serial ms"};
          for (unsigned T : thread_counts) {
            hdr.push_back("T=" + std::to_string(T));
          }
          hdr.insert(hdr.end(), {"windows", "W-limit", "barriers"});
          t.header(hdr);
        }
        for (const programs::Workload& w : workloads) {
          std::cerr << "  timing " << w.name << " ("
                    << net::net_kind_name(kind) << ", threads sweep) ...\n";
          driver::RunOptions opts;
          opts.backend = backend;
          driver::MultiOptions mo;
          mo.num_nodes = top_nodes;
          mo.net = kind;
          agg_args.apply(mo, combos.front().agg, combos.front().placement);
          const auto timed = [&](unsigned threads) {
            mo.threads = threads;
            const auto t0 = std::chrono::steady_clock::now();
            driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            return std::make_pair(std::move(r), ms);
          };
          auto [serial, serial_ms] = timed(0);
          if (!serial.ok()) {
            throw Error(w.name + " failed on " + std::to_string(top_nodes) +
                        " nodes (" + net::net_kind_name(kind) +
                        "): " + serial.check_error);
          }
          const std::string key = std::string("parallel.") + bk + "." +
                                  net::net_kind_name(kind) + "." + w.name +
                                  ".n" + std::to_string(top_nodes) + ".";
          json_metrics.emplace_back(key + "serial_ms", serial_ms);
          std::vector<std::string> row{w.name, text::fixed(serial_ms, 1)};
          driver::MultiRunResult last;
          for (unsigned T : thread_counts) {
            auto [par, par_ms] = timed(T);
            require_identical(serial, par,
                              w.name + " T=" + std::to_string(T) + " (" +
                                  net::net_kind_name(kind) + ")");
            const double speedup = par_ms > 0 ? serial_ms / par_ms : 0.0;
            row.push_back(text::fixed(par_ms, 1) + " (" +
                          text::fixed(speedup, 2) + "x)");
            const std::string tkey = key + "t" + std::to_string(T) + ".";
            json_metrics.emplace_back(tkey + "wall_ms", par_ms);
            json_metrics.emplace_back(tkey + "speedup", speedup);
            json_metrics.emplace_back(
                tkey + "threads", static_cast<double>(par.parallel.threads));
            json_metrics.emplace_back(
                tkey + "windows", static_cast<double>(par.parallel.windows));
            json_metrics.emplace_back(
                tkey + "barriers", static_cast<double>(par.parallel.barriers));
            json_metrics.emplace_back(tkey + "engaged",
                                      par.parallel.engaged ? 1.0 : 0.0);
            last = std::move(par);
          }
          json_metrics.emplace_back(
              key + "window_limit",
              static_cast<double>(last.parallel.window_limit));
          row.push_back(text::with_commas(last.parallel.windows));
          row.push_back(std::to_string(last.parallel.window_limit));
          row.push_back(text::with_commas(last.parallel.barriers));
          t.row(row);
        }
        t.print(std::cout);
        std::cout << "\n";
      }
    }
    std::cout << "Every parallel column is verified bit-identical to the "
                 "serial baseline\n(rounds, halt value, messages, per-node "
                 "counters, NetStats) before its time\nis reported.  "
                 "Speedups track the host's CPU count — equivalence does "
                 "not.\n\n";
  }

  // --host-profile / --signals / --host-trace / --host-out /
  // --signals-out: the host-time observatory.  Rerun each program at the
  // top node count with the observation layers attached — a plain run
  // first, then the layered one, checked bit-identical in every measured
  // field (the zero-perturbation contract, also pinned by
  // tests/hostobs_test.cpp) — then report where the host's wall clock
  // went and what the signal boards held at the end.  Like --flow these
  // reruns leave the measured sweep untouched; they use the first
  // requested network and agg/placement combination, and the largest
  // --threads count (serial when --threads was not given).
  const bool host_prof_on = obs_args.host_profile ||
                            !host_args.trace_path.empty() ||
                            !host_args.host_out.empty();
  const bool signals_on =
      host_args.signals || !host_args.signals_out.empty();
  if (host_prof_on || signals_on) {
    const net::NetKind host_net = nets.front();
    const unsigned host_threads =
        thread_counts.empty() ? 0 : thread_counts.back();
    std::vector<std::pair<std::string,
                          std::shared_ptr<const obs::HostReport>>> host_runs;
    std::vector<std::pair<std::string,
                          std::shared_ptr<const obs::SignalSnapshot>>>
        signal_runs;
    for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                    rt::BackendKind::ActiveMessages}) {
      const char* bk =
          backend == rt::BackendKind::MessageDriven ? "md" : "am";
      for (const programs::Workload& w : workloads) {
        std::cerr << "  observing " << w.name << " ("
                  << net::net_kind_name(host_net) << ", T=" << host_threads
                  << ") ...\n";
        driver::RunOptions opts;
        opts.backend = backend;
        driver::MultiOptions mo;
        mo.num_nodes = top_nodes;
        mo.net = host_net;
        agg_args.apply(mo, combos.front().agg, combos.front().placement);
        mo.threads = host_threads;
        driver::MultiRunResult plain = driver::run_workload_multi(w, opts, mo);
        mo.host_profile = host_prof_on;
        mo.signals.enabled = signals_on;
        driver::MultiRunResult layered =
            driver::run_workload_multi(w, opts, mo);
        if (!layered.ok()) {
          throw Error(w.name + " failed under the host observatory: " +
                      layered.check_error);
        }
        require_identical(plain, layered,
                          w.name + " (host observatory, T=" +
                              std::to_string(host_threads) + ")");
        const std::string label =
            w.name + (backend == rt::BackendKind::MessageDriven ? " / MD"
                                                                : " / AM");
        std::cout << "\n== " << label << " (" << top_nodes << "-node "
                  << net::net_kind_name(host_net) << ", T=" << host_threads
                  << ", host observatory) ==\n";
        const std::string key = std::string(bk) + "." + w.name + ".n" +
                                std::to_string(top_nodes) + ".";
        if (layered.host != nullptr) {
          const obs::HostReport& hr = *layered.host;
          hr.write_text(std::cout);
          json_metrics.emplace_back("host." + key + "engine_wall_ms",
                                    static_cast<double>(hr.engine_wall_ns) /
                                        1e6);
          json_metrics.emplace_back("host." + key + "coverage",
                                    hr.coverage());
          json_metrics.emplace_back("host." + key + "windows",
                                    static_cast<double>(hr.windows));
          json_metrics.emplace_back("host." + key + "imbalance",
                                    hr.imbalance());
          host_runs.emplace_back(label, layered.host);
        }
        if (layered.signals != nullptr) {
          const obs::SignalSnapshot& ss = *layered.signals;
          std::uint64_t quanta = 0;
          std::uint64_t inlets = 0;
          std::uint64_t publishes = 0;
          for (const obs::SignalSnapshot::Node& n : ss.nodes) {
            quanta += n.frame.quanta;
            inlets += n.frame.inlets;
            publishes = std::max(publishes, n.frame.seq);
          }
          std::cout << "Signal bus: " << ss.nodes.size() << " boards, "
                    << publishes << " publishes; totals "
                    << text::with_commas(quanta) << " quanta, "
                    << text::with_commas(inlets) << " inlets\n";
          // Deterministic counters (exact-match keys for bench_diff, not
          // tolerance-gated timing): the bus's own cadence and totals.
          json_metrics.emplace_back("signals." + key + "publishes",
                                    static_cast<double>(publishes));
          json_metrics.emplace_back("signals." + key + "quanta",
                                    static_cast<double>(quanta));
          json_metrics.emplace_back("signals." + key + "inlets",
                                    static_cast<double>(inlets));
          signal_runs.emplace_back(label, layered.signals);
        }
      }
    }
    std::cout << "\nEvery observed run above was verified bit-identical to "
                 "a plain run first:\nthe observatory and the signal bus "
                 "change no measured number.\n\n";
    if (!host_args.trace_path.empty()) {
      std::vector<std::pair<std::string, const obs::FlowTrace*>> flow_refs;
      std::vector<std::pair<std::string, const obs::HostReport*>> host_refs;
      host_refs.reserve(host_runs.size());
      for (const auto& [label, hr] : host_runs) {
        host_refs.emplace_back(label, hr.get());
      }
      std::string note = "(";
      note += std::to_string(host_refs.size());
      note += " host reports)";
      obs::write_file(
          host_args.trace_path, "host trace",
          [&](std::ostream& out) {
            obs::write_host_chrome_trace(out, flow_refs, host_refs);
          },
          note);
    }
    if (!host_args.host_out.empty()) {
      obs::write_file(host_args.host_out, "host report", [&](std::ostream&
                                                                 out) {
        out << "{\"schema_version\": " << obs::kObsSchemaVersion
            << ", \"runs\": [";
        obs::JsonListSep sep;
        for (const auto& [label, hr] : host_runs) {
          sep.next(out) << "{\"label\": \"" << json::escape(label)
                        << "\", \"host\": ";
          hr->write_json(out);
          out << "}";
        }
        out << "\n]}\n";
      });
    }
    if (!host_args.signals_out.empty()) {
      obs::write_file(host_args.signals_out, "signal snapshot",
                      [&](std::ostream& out) {
                        out << "{\"schema_version\": "
                            << obs::kObsSchemaVersion << ", \"runs\": [";
                        obs::JsonListSep sep;
                        for (const auto& [label, ss] : signal_runs) {
                          sep.next(out) << "{\"label\": \""
                                        << json::escape(label)
                                        << "\", \"signals\": ";
                          ss->write_json(out);
                          out << "}";
                        }
                        out << "\n]}\n";
                      });
    }
  }

  bench::write_json(bench::json_path_from_args(argc, argv), "multinode",
                    watch.seconds(), json_metrics);

  // --flow: instrumented reruns at the top node count, after the measured
  // sweep so tracing can't perturb it (it wouldn't anyway: bit-identical
  // results are pinned by tests/flow_test.cpp).  Prefer the mesh — its
  // per-hop transit makes the flow arrows meaningful.
  if (!obs_args.flow_path.empty()) {
    const net::NetKind flow_net =
        std::find(nets.begin(), nets.end(), net::NetKind::Mesh) != nets.end()
            ? net::NetKind::Mesh
            : nets.front();
    std::vector<std::pair<std::string,
                          std::shared_ptr<const obs::FlowTrace>>> traces;
    for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                    rt::BackendKind::ActiveMessages}) {
      for (const programs::Workload& w : workloads) {
        driver::RunOptions opts;
        opts.backend = backend;
        driver::MultiOptions mo;
        mo.num_nodes = top_nodes;
        mo.net = flow_net;
        agg_args.apply(mo, combos.front().agg, combos.front().placement);
        mo.flow.enabled = true;
        mo.flow.sample_every = 256;
        driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
        const std::string label =
            w.name + (backend == rt::BackendKind::MessageDriven ? " / MD"
                                                                : " / AM");
        if (r.flow != nullptr) {
          std::cout << "\n== " << label << " (" << top_nodes << "-node "
                    << net::net_kind_name(flow_net) << ") ==\n";
          obs::write_critical_path(std::cout, *r.flow,
                                   obs::analyze_critical_path(*r.flow));
          traces.emplace_back(label, r.flow);
        }
      }
    }
    std::vector<std::pair<std::string, const obs::FlowTrace*>> refs;
    refs.reserve(traces.size());
    for (const auto& [label, tr] : traces) refs.emplace_back(label, tr.get());
    std::string note = "(";
    note += std::to_string(refs.size());
    note += " flow traces)";
    obs::write_file(
        obs_args.flow_path, "flow trace",
        [&](std::ostream& out) { obs::write_flow_chrome_trace(out, refs); },
        note);
  }
  return 0;
}
