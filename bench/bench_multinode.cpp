// Multi-node extension study — the paper's stated future work:
//
// "While our results were only for uniprocessors, our isolation of a
// uniprocessor anomaly (Section 2.4) gives reason to believe our work
// would extend to multiple processors, although further research needs to
// be done."
//
// Runs every workload on 1/2/4/8 nodes under both back-ends, reporting
// parallel rounds (each live node retires one instruction per round),
// speedup over one node, and network-message counts.  The dataflow
// structure of each program shows through directly: mmt/dtw/paraffins
// parallelize, wavefront is a sequential pipeline by construction, and
// selection sort is one frame on node 0.

#include "bench_common.h"
#include "support/error.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  programs::Scale scale{16, 80, 12, 11, 16, 3, 60};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      scale = programs::Scale{8, 30, 8, 8, 8, 2, 20};
    }
  }

  for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                  rt::BackendKind::ActiveMessages}) {
    std::cout << "=== " << rt::backend_name(backend)
              << " implementation ===\n";
    text::Table t;
    t.header({"Program", "rounds N=1", "N=2", "N=4", "N=8", "speedup@4",
              "msgs@4"});
    for (const programs::Workload& w : programs::paper_workloads(scale)) {
      std::cerr << "  running " << w.name << " ...\n";
      driver::RunOptions opts;
      opts.backend = backend;
      std::vector<std::string> row{w.name};
      std::uint64_t r1 = 0, r4 = 0, m4 = 0;
      for (int nodes : {1, 2, 4, 8}) {
        driver::MultiRunResult r =
            driver::run_workload_multi(w, opts, nodes);
        if (!r.ok()) {
          throw Error(w.name + " failed on " + std::to_string(nodes) +
                      " nodes: " + r.check_error);
        }
        row.push_back(text::with_commas(r.rounds));
        if (nodes == 1) r1 = r.rounds;
        if (nodes == 4) {
          r4 = r.rounds;
          m4 = r.messages;
        }
      }
      row.push_back(text::fixed(static_cast<double>(r1) / r4, 2));
      row.push_back(text::with_commas(m4));
      t.row(row);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Speedups mirror each program's dataflow: independent rows "
               "(mmt) scale, the\nwavefront row pipeline and single-frame "
               "selection sort do not.\n";
  return 0;
}
