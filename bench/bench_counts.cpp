// §3.1 — instruction and memory access counts.
//
// "On average, the MD implementation yields 86% of the reads, 87% of the
// writes, and 77% of the fetches produced by the AM implementation."
// This bench reports per-program and average MD/AM ratios for reads,
// writes and fetches, plus the system/user split the paper's analysis is
// built on ("memory was divided into system and user regions").

#include <cmath>

#include "bench_common.h"
#include "metrics/granularity.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  driver::RunOptions opts;
  opts.with_cache = false;  // counts only: no cache ladder needed
  const auto pairs = bench::run_all(args.scale, opts);

  text::Table t;
  t.header({"Program", "reads MD/AM", "writes MD/AM", "fetches MD/AM",
            "sys-fetch MD", "sys-fetch AM", "user-fetch MD",
            "user-fetch AM"});
  double lr = 0, lw = 0, lf = 0;
  for (const driver::BackendPair& p : pairs) {
    const auto& cm = p.md.counts;
    const auto& ca = p.am.counts;
    const double rr = static_cast<double>(cm.total_reads()) / ca.total_reads();
    const double rw =
        static_cast<double>(cm.total_writes()) / ca.total_writes();
    const double rf =
        static_cast<double>(cm.total_fetches()) / ca.total_fetches();
    lr += std::log(rr);
    lw += std::log(rw);
    lf += std::log(rf);
    t.row({p.md.workload, text::fixed(rr, 3), text::fixed(rw, 3),
           text::fixed(rf, 3), text::with_commas(cm.fetches_in(0)),
           text::with_commas(ca.fetches_in(0)),
           text::with_commas(cm.fetches_in(1)),
           text::with_commas(ca.fetches_in(1))});
  }
  const double n = static_cast<double>(pairs.size());
  t.row({"geomean", text::fixed(std::exp(lr / n), 3),
         text::fixed(std::exp(lw / n), 3), text::fixed(std::exp(lf / n), 3),
         "-", "-", "-", "-"});
  t.print(std::cout);
  std::cout << "\nPaper: MD/AM averages were 0.86 (reads), 0.87 (writes), "
               "0.77 (fetches).\n";
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
