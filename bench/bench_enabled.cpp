// §2.4 / Figure 2 ablation — the uniprocessor "enabled" anomaly.
//
// "Another possibility, which we call the enabled implementation, allows
// interrupts whenever possible...  the enabled implementation allows a
// local I-structure fetch to be serviced immediately, resulting in greater
// quantum size...  performance of the enabled implementation is superior
// to that of the AM implementation on a single processor."
//
// This bench compares the unenabled (measured) AM variant against the
// enabled one: the enabled variant should show larger quanta (higher TPQ)
// and fewer cycles on a uniprocessor.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  const bench::Stopwatch clock;

  text::Table t;
  t.header({"Program", "TPQ unen.", "TPQ enabled", "cycles unen. @24",
            "cycles enabled @24", "enabled/unen."});
  std::vector<std::pair<std::string, double>> metrics;
  for (const programs::Workload& w : programs::paper_workloads(args.scale)) {
    std::cerr << "  running " << w.name << " ...\n";
    driver::RunOptions opts = args.run_options();
    opts.backend = rt::BackendKind::ActiveMessages;
    opts.am_enabled_variant = false;
    driver::RunResult unen = driver::run_workload(w, opts);
    opts.am_enabled_variant = true;
    driver::RunResult en = driver::run_workload(w, opts);
    driver::require_ok({&unen, &en});
    const std::uint64_t cu = unen.cycles(8192, 4, 24);
    const std::uint64_t ce = en.cycles(8192, 4, 24);
    t.row({w.name, text::fixed(unen.gran.tpq(), 1),
           text::fixed(en.gran.tpq(), 1), text::with_commas(cu),
           text::with_commas(ce),
           text::fixed(static_cast<double>(ce) / cu, 3)});
    metrics.emplace_back(w.name + ".tpq_unenabled", unen.gran.tpq());
    metrics.emplace_back(w.name + ".tpq_enabled", en.gran.tpq());
    metrics.emplace_back(w.name + ".enabled_cycle_ratio_8K_4way_p24",
                         static_cast<double>(ce) / cu);
  }
  t.print(std::cout);
  bench::write_json(args.json_path, "enabled", clock.seconds(), metrics);
  std::cout << "\nPaper: enabled quanta are larger and uniprocessor "
               "performance superior; the unenabled variant better models "
               "multiprocessor behaviour and is what the paper measures.\n";
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
