// Micro-benchmarks of the simulator itself (google-benchmark): cache
// access throughput, machine interpretation rate, compile time.  These
// gate the practicality of the full sweeps, not the paper's results.
//
// `bench_micro --dispatch [--json path]` bypasses google-benchmark and
// reports raw interpreter throughput (instructions/sec) for classic vs
// decoded dispatch on two kernels — a tight arithmetic loop and a
// SEND/SUSPEND handler loop — in the same JSON shape as the per-table
// benches, so BENCH_interp.json carries a kernel-level number alongside
// the end-to-end bench_table2/bench_fig3 walls.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "cache/cache.h"
#include "cache/cache_bank.h"
#include "driver/experiment.h"
#include "mdp/assembler.h"
#include "mdp/machine.h"
#include "programs/registry.h"
#include "runtime/kernel.h"
#include "tamc/lower.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

/// Kernel 1: straight-line arithmetic — decrement to zero, halt.  The
/// decoded engine's best case: one superblock re-entered per backward
/// branch, no scheduler traffic.
mdp::CodeImage arith_loop_image(std::int32_t iters) {
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  auto loop = a.label("loop");
  a.movi(mdp::R0, iters);
  a.bind(loop);
  a.alui(mdp::Op::Subi, mdp::R0, mdp::R0, 1);
  a.brnz(mdp::R0, loop);
  a.halt(mdp::R0);
  a.suspend();
  return a.link();
}

/// Kernel 2: a self-reposting handler — each message runs a few
/// instructions, composes a successor message (SENDL/SENDWI/SENDE) and
/// SUSPENDs.  Every message crosses the two superblock exits the decoded
/// engine must re-enter the scheduler at, so this bounds the chaining
/// win by dispatch overhead.
mdp::CodeImage handler_loop_image(std::int32_t messages) {
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  auto handler = a.label("handler");
  auto done = a.label("done");
  a.movi(mdp::R1, messages);
  a.bind(handler);
  a.alui(mdp::Op::Subi, mdp::R1, mdp::R1, 1);
  a.brz(mdp::R1, done);
  a.sendl();
  a.sendwi(handler);
  a.sende();
  a.suspend();
  a.bind(done);
  a.halt(mdp::R1);
  a.suspend();
  return a.link();
}

/// Best-of-`reps` interpretation rate (instructions/sec) for one kernel
/// under one dispatch kind, hooks off — the raw interpreter loop.
double instrs_per_sec(const mdp::CodeImage& img, mdp::DispatchKind d,
                      int reps = 5) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mdp::Machine m(img);
    m.set_dispatch(d);
    std::uint32_t boot[] = {mem::kSysCodeBase};
    m.inject(mdp::Priority::Low, boot);
    const bench::Stopwatch clock;
    if (m.run() != mdp::RunStatus::Halted) std::abort();
    const double rate =
        static_cast<double>(m.instructions_executed()) / clock.seconds();
    if (rate > best) best = rate;
  }
  return best;
}

/// `--dispatch` mode: classic-vs-decoded interpreter throughput report.
int run_dispatch_report(int argc, char** argv) {
  const bench::Stopwatch wall;
  struct Kernel {
    const char* name;
    mdp::CodeImage img;
  };
  Kernel kernels[] = {
      {"arith", arith_loop_image(1'000'000)},
      {"handler", handler_loop_image(200'000)},
  };
  std::vector<std::pair<std::string, double>> metrics;
  std::cout << "interpreter throughput (Minstr/s, best of 5, hooks off)\n";
  for (const Kernel& k : kernels) {
    const double classic =
        instrs_per_sec(k.img, mdp::DispatchKind::Classic);
    const double decoded =
        instrs_per_sec(k.img, mdp::DispatchKind::Decoded);
    std::cout << "  " << k.name << ": classic " << classic / 1e6
              << "  decoded " << decoded / 1e6 << "  speedup "
              << decoded / classic << "x\n";
    metrics.emplace_back(std::string(k.name) + "_classic_minstr_per_s",
                         classic / 1e6);
    metrics.emplace_back(std::string(k.name) + "_decoded_minstr_per_s",
                         decoded / 1e6);
    metrics.emplace_back(std::string(k.name) + "_decoded_speedup",
                         decoded / classic);
  }
  bench::write_json(bench::json_path_from_args(argc, argv),
                    "micro_dispatch", wall.seconds(), metrics);
  return 0;
}

void BM_CacheAccess(benchmark::State& state) {
  cache::SetAssocCache c(cache::CacheConfig{
      static_cast<std::uint32_t>(state.range(0)), 64, 4});
  std::uint32_t x = 12345;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(c.access((x >> 8) & 0xFFFFF0u, (x & 1) != 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1024)->Arg(8192)->Arg(131072);

void BM_CacheBankFanout(benchmark::State& state) {
  cache::CacheBank bank = cache::CacheBank::paper_bank();
  std::uint32_t x = 98765;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    bank.on_data((x >> 8) & 0xFFFFF0u, (x & 1) != 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheBankFanout);

void BM_MachineInterpretation(benchmark::State& state) {
  // A tight self-contained loop: decrement a register until zero, halt.
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  auto loop = a.label("loop");
  a.movi(mdp::R0, 1'000'000);
  a.bind(loop);
  a.alui(mdp::Op::Subi, mdp::R0, mdp::R0, 1);
  a.brnz(mdp::R0, loop);
  a.halt(mdp::R0);
  auto entry = a.here("entry_stub");
  a.suspend();
  (void)entry;
  mdp::CodeImage img = a.link();
  for (auto _ : state) {
    mdp::Machine m(img);
    std::uint32_t boot[] = {mem::kSysCodeBase};
    m.inject(mdp::Priority::Low, boot);
    benchmark::DoNotOptimize(m.run());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                m.instructions_executed()));
  }
}
BENCHMARK(BM_MachineInterpretation)->Unit(benchmark::kMillisecond);

void BM_CompileWorkload(benchmark::State& state) {
  programs::Workload w = programs::make_mmt(8);
  for (auto _ : state) {
    tamc::CompileOptions opts;
    opts.backend = state.range(0) == 0 ? rt::BackendKind::MessageDriven
                                       : rt::BackendKind::ActiveMessages;
    benchmark::DoNotOptimize(tamc::compile(w.program, opts));
  }
}
BENCHMARK(BM_CompileWorkload)->Arg(0)->Arg(1);

void BM_EndToEndWorkload(benchmark::State& state) {
  programs::Workload w = programs::make_selection_sort(40);
  for (auto _ : state) {
    driver::RunOptions opts;
    opts.backend = state.range(0) == 0 ? rt::BackendKind::MessageDriven
                                       : rt::BackendKind::ActiveMessages;
    opts.with_cache = state.range(1) != 0;
    benchmark::DoNotOptimize(driver::run_workload(w, opts));
  }
}
BENCHMARK(BM_EndToEndWorkload)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dispatch") {
      return run_dispatch_report(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
