// Micro-benchmarks of the simulator itself (google-benchmark): cache
// access throughput, machine interpretation rate, compile time.  These
// gate the practicality of the full sweeps, not the paper's results.

#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "cache/cache_bank.h"
#include "driver/experiment.h"
#include "mdp/assembler.h"
#include "mdp/machine.h"
#include "programs/registry.h"
#include "runtime/kernel.h"
#include "tamc/lower.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

void BM_CacheAccess(benchmark::State& state) {
  cache::SetAssocCache c(cache::CacheConfig{
      static_cast<std::uint32_t>(state.range(0)), 64, 4});
  std::uint32_t x = 12345;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(c.access((x >> 8) & 0xFFFFF0u, (x & 1) != 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1024)->Arg(8192)->Arg(131072);

void BM_CacheBankFanout(benchmark::State& state) {
  cache::CacheBank bank = cache::CacheBank::paper_bank();
  std::uint32_t x = 98765;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    bank.on_data((x >> 8) & 0xFFFFF0u, (x & 1) != 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheBankFanout);

void BM_MachineInterpretation(benchmark::State& state) {
  // A tight self-contained loop: decrement a register until zero, halt.
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  auto loop = a.label("loop");
  a.movi(mdp::R0, 1'000'000);
  a.bind(loop);
  a.alui(mdp::Op::Subi, mdp::R0, mdp::R0, 1);
  a.brnz(mdp::R0, loop);
  a.halt(mdp::R0);
  auto entry = a.here("entry_stub");
  a.suspend();
  (void)entry;
  mdp::CodeImage img = a.link();
  for (auto _ : state) {
    mdp::Machine m(img);
    std::uint32_t boot[] = {mem::kSysCodeBase};
    m.inject(mdp::Priority::Low, boot);
    benchmark::DoNotOptimize(m.run());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                m.instructions_executed()));
  }
}
BENCHMARK(BM_MachineInterpretation)->Unit(benchmark::kMillisecond);

void BM_CompileWorkload(benchmark::State& state) {
  programs::Workload w = programs::make_mmt(8);
  for (auto _ : state) {
    tamc::CompileOptions opts;
    opts.backend = state.range(0) == 0 ? rt::BackendKind::MessageDriven
                                       : rt::BackendKind::ActiveMessages;
    benchmark::DoNotOptimize(tamc::compile(w.program, opts));
  }
}
BENCHMARK(BM_CompileWorkload)->Arg(0)->Arg(1);

void BM_EndToEndWorkload(benchmark::State& state) {
  programs::Workload w = programs::make_selection_sort(40);
  for (auto _ : state) {
    driver::RunOptions opts;
    opts.backend = state.range(0) == 0 ? rt::BackendKind::MessageDriven
                                       : rt::BackendKind::ActiveMessages;
    opts.with_cache = state.range(1) != 0;
    benchmark::DoNotOptimize(driver::run_workload(w, opts));
  }
}
BENCHMARK(BM_EndToEndWorkload)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
