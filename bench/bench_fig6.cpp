// Figure 6 — "The geometric means of the ratio (MD/AM) of the total cycles
// taken in all programs EXCEPT selection-sort for direct-mapped caches."
//
// Selection sort is the outlier (one giant frame, MD/AM ~0.6 everywhere);
// removing it shows the remaining programs' balance: "the MD implementation
// still performs better for miss costs of 12 and 24 cycles, although
// less dramatically so; with a miss cost of 48 cycles, the geometric mean
// for the AM implementation is sometimes slightly superior."

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);
  driver::RunOptions opts;
  opts.engine = args.engine;
  opts.dispatch = args.dispatch;
  const auto pairs = bench::run_all(args.scale, opts);

  std::vector<driver::Series> series;
  for (std::uint32_t penalty : cache::paper_miss_penalties()) {
    driver::Series s;
    s.name = std::to_string(penalty) + "-cycle miss";
    for (std::uint32_t size : cache::paper_cache_sizes()) {
      s.values.push_back(bench::ratio_geomean(pairs, size, 1, penalty,
                                              /*exclude_ss=*/true));
    }
    series.push_back(std::move(s));
  }
  driver::print_ratio_table(
      std::cout,
      "Figure 6 (direct-mapped, selection sort excluded): geomean MD/AM",
      bench::size_labels(), series);
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
