// §2.3 ablation — the Message-Driven compiler optimizations.
//
// "Because inlets pass control directly to threads instead of placing them
// into a continuation vector, a bigger region of code is open to
// conventional optimization": inlet->thread fall-through, frame
// store/reload elision, and stop->suspend conversion.  The paper presents
// these as available improvements; this bench quantifies each one
// cumulatively on top of the plain MD implementation.

#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);

  struct Level {
    const char* name;
    tamc::MdOptions md;
  };
  const Level levels[] = {
      {"plain MD", tamc::MdOptions::none()},
      {"+ inline fall-through", {true, false, false}},
      {"+ frame-traffic elision", {true, true, false}},
      {"+ stop->suspend", {true, true, true}},
  };

  text::Table t;
  std::vector<std::string> head{"Program"};
  for (const Level& l : levels) head.push_back(l.name);
  t.header(head);

  for (const programs::Workload& w : programs::paper_workloads(args.scale)) {
    std::cerr << "  running " << w.name << " ...\n";
    std::vector<std::string> row{w.name};
    std::uint64_t base = 0;
    for (const Level& l : levels) {
      driver::RunOptions opts;
      opts.backend = rt::BackendKind::MessageDriven;
      opts.md = l.md;
      opts.with_cache = false;
      driver::RunResult r = driver::run_workload(w, opts);
      driver::require_ok({&r});
      if (base == 0) {
        base = r.instructions;
        row.push_back(text::with_commas(base) + " instr");
      } else {
        row.push_back(text::fixed(
            100.0 * (1.0 - static_cast<double>(r.instructions) / base), 2) +
            "% saved");
      }
    }
    t.row(row);
  }
  t.print(std::cout);
  std::cout << "\nEach column adds one §2.3 optimization; savings are "
               "relative to the plain MD implementation.\n";
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
