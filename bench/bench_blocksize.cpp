// §3.3 setup ablation — block size sweep.
//
// "We simulated 1-, 2-, and 4-way set-associativity with block sizes
// varying from 8 to 64 bytes.  We show data for 64-byte blocks, the size
// at which both systems performed best."  This bench regenerates that
// claim: total cycles per back-end (geomean across programs, 8K 4-way,
// miss = 24) for block sizes 8/16/32/64.

#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const programs::Scale scale = bench::scale_from_args(argc, argv);
  const bench::ObsArgs obs_args = bench::obs_args_from_args(argc, argv);

  text::Table t;
  t.header({"Block", "MD cycles (geomean)", "AM cycles (geomean)",
            "MD/AM"});
  for (std::uint32_t block : {8u, 16u, 32u, 64u}) {
    driver::RunOptions opts;
    opts.block_bytes = block;
    const auto pairs = bench::run_all(scale, opts);
    double lmd = 0, lam = 0, lratio = 0;
    for (const driver::BackendPair& p : pairs) {
      lmd += std::log(static_cast<double>(p.md.cycles(8192, 4, 24)));
      lam += std::log(static_cast<double>(p.am.cycles(8192, 4, 24)));
      lratio += std::log(p.ratio(8192, 4, 24));
    }
    const double n = static_cast<double>(pairs.size());
    t.row({std::to_string(block) + "B",
           text::with_commas(static_cast<std::uint64_t>(std::exp(lmd / n))),
           text::with_commas(static_cast<std::uint64_t>(std::exp(lam / n))),
           text::fixed(std::exp(lratio / n), 3)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: both systems performed best with 64-byte blocks "
               "(cycles should fall as the block grows).\n";
  bench::maybe_export_obs(obs_args, scale, {});
  return 0;
}
