// §3.3 setup ablation — block size sweep.
//
// "We simulated 1-, 2-, and 4-way set-associativity with block sizes
// varying from 8 to 64 bytes.  We show data for 64-byte blocks, the size
// at which both systems performed best."  This bench regenerates that
// claim: total cycles per back-end (geomean across programs, 8K 4-way,
// miss = 24) for block sizes 8/16/32/64.
//
// The reference stream a workload emits does not depend on the observing
// cache, so with the default stack engine the whole sweep costs one
// machine pass per (workload, back-end) pair — the per-size ladders are
// groups of one multi-block-size StackSimBank (driver::run_blocksize_sweep).
// --engine=classic re-runs the machine per block size instead.  Either
// way, identical instruction counts across the block-size groups are
// asserted below.

#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jtam;  // NOLINT(build/namespaces)
  const bench::CommonArgs args = bench::common_args(argc, argv);

  driver::RunOptions opts;
  opts.engine = args.engine;
  opts.dispatch = args.dispatch;
  const std::span<const std::uint32_t> blocks = bench::paper_block_sizes();

  bench::Stopwatch clock;
  std::vector<std::vector<driver::BackendPair>> by_block;
  if (opts.engine == driver::CacheEngine::Stack) {
    by_block = bench::run_all_blocksizes(args.scale, opts, blocks);
  } else {
    for (std::uint32_t block : blocks) {
      driver::RunOptions o = opts;
      o.block_bytes = block;
      by_block.push_back(bench::run_all(args.scale, o));
    }
  }
  const double wall = clock.seconds();

  // The cache is a passive observer: every block-size group must report
  // the exact same instruction counts, whether the groups came from one
  // shared machine pass or from separate runs.
  for (std::size_t k = 1; k < by_block.size(); ++k) {
    for (std::size_t i = 0; i < by_block[k].size(); ++i) {
      if (by_block[k][i].md.instructions != by_block[0][i].md.instructions ||
          by_block[k][i].am.instructions != by_block[0][i].am.instructions) {
        std::cerr << "FATAL: instruction counts differ across block sizes "
                     "for "
                  << by_block[k][i].md.workload << "\n";
        return 1;
      }
    }
  }

  text::Table t;
  t.header({"Block", "MD cycles (geomean)", "AM cycles (geomean)",
            "MD/AM"});
  std::vector<std::pair<std::string, double>> metrics;
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    const std::vector<driver::BackendPair>& pairs = by_block[k];
    double lmd = 0, lam = 0, lratio = 0;
    for (const driver::BackendPair& p : pairs) {
      lmd += std::log(static_cast<double>(p.md.cycles(8192, 4, 24)));
      lam += std::log(static_cast<double>(p.am.cycles(8192, 4, 24)));
      lratio += std::log(p.ratio(8192, 4, 24));
    }
    const double n = static_cast<double>(pairs.size());
    t.row({std::to_string(blocks[k]) + "B",
           text::with_commas(static_cast<std::uint64_t>(std::exp(lmd / n))),
           text::with_commas(static_cast<std::uint64_t>(std::exp(lam / n))),
           text::fixed(std::exp(lratio / n), 3)});
    const std::string prefix = "b" + std::to_string(blocks[k]) + "_";
    metrics.emplace_back(prefix + "md_cycles_geomean", std::exp(lmd / n));
    metrics.emplace_back(prefix + "am_cycles_geomean", std::exp(lam / n));
    metrics.emplace_back(prefix + "md_am_ratio_geomean",
                         std::exp(lratio / n));
  }
  t.print(std::cout);
  std::cout << "\nPaper: both systems performed best with 64-byte blocks "
               "(cycles should fall as the block grows).\n";
  std::cerr << "  simulation wall-clock: " << text::fixed(wall, 3) << " s\n";
  bench::write_json(args.json_path, "bench_blocksize", wall, metrics);
  bench::maybe_export_obs(args.obs, args.scale, {});
  return 0;
}
